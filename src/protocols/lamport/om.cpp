#include "protocols/lamport/om.hpp"

#include "util/contracts.hpp"

namespace da::protocols::lamport {

std::vector<std::unique_ptr<sim::Process>> make_om_processes(int n, int m,
                                                             NodeId sender,
                                                             Value value) {
  DA_EXPECTS(m >= 0);
  return make_eig_processes(n, sender, value, om_rounds(m),
                            std::make_shared<MajorityResolver>());
}

int om_rounds(int m) {
  DA_EXPECTS(m >= 0);
  return m + 1;
}

std::uint64_t om_message_count(int n, int m) {
  DA_EXPECTS(n >= 2 && m >= 0);
  return eig_message_count(n, om_rounds(m));
}

bool byzantine_agreement_holds(
    NodeId sender, Value sender_value, bool sender_faulty,
    const std::vector<NodeId>& fault_free_receivers,
    const std::map<NodeId, Value>& decisions) {
  (void)sender;
  if (fault_free_receivers.empty()) return true;
  const auto first = decisions.find(fault_free_receivers.front());
  DA_EXPECTS(first != decisions.end());
  const Value agreed = first->second;
  for (NodeId r : fault_free_receivers) {
    const auto it = decisions.find(r);
    DA_EXPECTS(it != decisions.end());
    if (it->second != agreed) return false;
  }
  return sender_faulty || agreed == sender_value;
}

}  // namespace da::protocols::lamport
