#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "protocols/common/eig_process.hpp"
#include "sim/process.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::protocols::lamport {

/// Lamport-Shostak-Pease OM(m), the paper's reference [7] and the baseline
/// BYZ extends: the identical EIG message pattern, resolved by simple
/// majority instead of the VOTE(n-1-m, n-1) threshold. Satisfies D.1/D.2
/// (Byzantine agreement) for f <= m when n >= 3m+1; makes *no* promise for
/// f > m — the degradable protocol's whole point.
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_om_processes(
    int n, int m, NodeId sender, Value value);

/// Rounds used by OM(m).
[[nodiscard]] int om_rounds(int m);

/// Point-to-point message count of OM(m) with n nodes (same recursion as
/// BYZ(m,m) for m >= 1; OM(0) is a bare broadcast).
[[nodiscard]] std::uint64_t om_message_count(int n, int m);

/// Byzantine agreement conditions (Lamport's IC1/IC2, identical to D.1/D.2):
/// true iff all fault-free receivers decided one identical value, which is
/// the sender's value whenever the sender is fault-free.
[[nodiscard]] bool byzantine_agreement_holds(
    NodeId sender, Value sender_value, bool sender_faulty,
    const std::vector<NodeId>& fault_free_receivers,
    const std::map<NodeId, Value>& decisions);

}  // namespace da::protocols::lamport
