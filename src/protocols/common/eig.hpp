#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "protocols/common/eig_layout.hpp"
#include "util/ids.hpp"
#include "util/path.hpp"
#include "util/value.hpp"

namespace da::protocols {

/// Resolution rule applied when folding an EIG (exponential information
/// gathering) tree bottom-up. `n_sub` is the number of nodes participating
/// in the sub-instance rooted at the path being resolved — exactly the `n`
/// of the recursive call BYZ(t,m) that the paper's algorithm would have made
/// there — and `w` are the n_sub-1 values of step 3.
class Resolver {
 public:
  virtual ~Resolver() = default;
  [[nodiscard]] virtual Value resolve(int n_sub,
                                      std::span<const Value> w) const = 0;
};

/// The message tree of a recursive agreement protocol, from one receiver's
/// point of view.
///
/// The recursion of BYZ(t,m) (and of Lamport's OM(m)) unfolds into m+1
/// communication rounds: a value relayed through the chain of distinct
/// nodes p_0=sender, p_1, ..., p_r is stored at path [p_0,...,p_r]. A slot
/// that was never filled (omitted message) reads as the default value V_d —
/// assumption (b) of Section 4: the absence of a message can be detected.
///
/// Storage is a flat arena: the shared `EigLayout` maps each admissible
/// path to a dense ordinal (level-major, children contiguous per parent),
/// values live in one contiguous vector preinitialized to V_d, and a
/// presence bitmap backs `has()` and the first-write contract. `set`,
/// `get` and `has` require structurally admissible paths — rooted at the
/// sender, within depth, pairwise-distinct participant hops — which every
/// receiver validates upstream anyway (`EigProcess::valid_message`);
/// malformed paths are contract violations here, not silent V_d reads.
///
/// `resolve` then computes the receiver's decision exactly as step 3 of
/// BYZ(t,m): at an internal path sigma, the receiver's value vector is its
/// own directly-received value for sigma plus the recursively resolved
/// values of the sub-senders j (j not in sigma, j != self), folded with the
/// supplied rule. The fold is an iterative bottom-up pass over the arena
/// (two level-sized scratch buffers, no recursion, no per-node Path
/// copies or hashing).
class EigTree {
 public:
  /// `nodes` lists every participant (sender included); `depth` is the
  /// number of rounds (maximum path length).
  EigTree(NodeId self, NodeId sender, std::vector<NodeId> nodes, int depth);

  /// Stores a received value. Writing a slot twice is a contract
  /// violation: receivers deduplicate deliveries upstream (`has()`), so a
  /// second write can only be a protocol bug and must not be masked.
  void set(const Path& path, Value v);

  /// `has()` + `set()` fused into one arena probe: stores `v` and returns
  /// true if the slot was empty, returns false (leaving the first-written
  /// value) if it was already filled. The receive hot path uses this so
  /// duplicate detection and the write share a single ordinal walk.
  bool set_if_absent(const Path& path, Value v);

  /// Value at `path`; V_d if never set.
  [[nodiscard]] Value get(const Path& path) const;

  [[nodiscard]] bool has(const Path& path) const;

  /// Fold the tree with `rule` starting from the root path [sender].
  [[nodiscard]] Value resolve(const Resolver& rule) const;

  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::size_t stored() const { return stored_; }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

  /// True if `id` is a participant (O(1) rank-table lookup).
  [[nodiscard]] bool is_participant(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < rank_of_.size() &&
           rank_of_[static_cast<std::size_t>(id)] >= 0;
  }

  /// The shared per-(n, sender, depth) arena layout (diagnostics/tests).
  [[nodiscard]] const EigLayout& layout() const { return *layout_; }

 private:
  [[nodiscard]] std::uint32_t ordinal_of(const Path& path) const;

  NodeId self_;
  NodeId sender_;
  std::vector<NodeId> nodes_;
  int depth_;
  /// Rank this receiver prunes at resolve time, or -1 when self == sender
  /// (the sender excludes nobody — it never relays through itself anyway).
  int exclude_rank_ = -1;
  std::vector<std::int16_t> rank_of_;  // NodeId -> rank in nodes_, -1 unknown
  std::shared_ptr<const EigLayout> layout_;
  std::vector<Value> values_;          // arena, V_d where never set
  std::vector<std::uint8_t> present_;  // backs has() / first-write contract
  std::size_t stored_ = 0;
};

/// BYZ(t,m)'s rule: VOTE(n_sub - 1 - m, n_sub - 1). The fixed `m` threads
/// through every level of the recursion (the paper: "the values of n and t
/// change at each level of the recursion, however, the value of m remains
/// fixed").
class ByzResolver final : public Resolver {
 public:
  explicit ByzResolver(int m);
  [[nodiscard]] Value resolve(int n_sub,
                              std::span<const Value> w) const override;

 private:
  int m_;
};

/// Lamport OM(m)'s rule: simple majority, default on no-majority.
class MajorityResolver final : public Resolver {
 public:
  [[nodiscard]] Value resolve(int n_sub,
                              std::span<const Value> w) const override;
};

/// Point-to-point messages of one EIG instance with `n` nodes unfolding
/// over `depth` rounds and no omissions: round r carries one message per
/// length-r relay chain of distinct nodes starting at the sender, i.e.
/// sum over r in [1, depth] of (n-1)(n-2)...(n-r). Every EIG-shaped
/// protocol's analytic count — BYZ(t,m), OM(m), crusader, IC — is this
/// formula at its depth (see byz_message_count / om_message_count /
/// crusader_message_count / ic_message_count).
[[nodiscard]] std::uint64_t eig_message_count(int n, int depth);

}  // namespace da::protocols
