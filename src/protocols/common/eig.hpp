#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/path.hpp"
#include "util/value.hpp"

namespace da::protocols {

/// Resolution rule applied when folding an EIG (exponential information
/// gathering) tree bottom-up. `n_sub` is the number of nodes participating
/// in the sub-instance rooted at the path being resolved — exactly the `n`
/// of the recursive call BYZ(t,m) that the paper's algorithm would have made
/// there — and `w` are the n_sub-1 values of step 3.
class Resolver {
 public:
  virtual ~Resolver() = default;
  [[nodiscard]] virtual Value resolve(int n_sub,
                                      std::span<const Value> w) const = 0;
};

/// The message tree of a recursive agreement protocol, from one receiver's
/// point of view.
///
/// The recursion of BYZ(t,m) (and of Lamport's OM(m)) unfolds into m+1
/// communication rounds: a value relayed through the chain of distinct
/// nodes p_0=sender, p_1, ..., p_r is stored at path [p_0,...,p_r]. A slot
/// that was never filled (omitted message) reads as the default value V_d —
/// assumption (b) of Section 4: the absence of a message can be detected.
///
/// `resolve` then computes the receiver's decision exactly as step 3 of
/// BYZ(t,m): at an internal path sigma, the receiver's value vector is its
/// own directly-received value for sigma plus the recursively resolved
/// values of the sub-senders j (j not in sigma, j != self), folded with the
/// supplied rule.
class EigTree {
 public:
  /// `nodes` lists every participant (sender included); `depth` is the
  /// number of rounds (maximum path length).
  EigTree(NodeId self, NodeId sender, std::vector<NodeId> nodes, int depth);

  /// Stores a received value. First write wins (duplicate deliveries for
  /// the same path are ignored; receivers validate structure upstream).
  void set(const Path& path, Value v);

  /// Value at `path`; V_d if never set.
  [[nodiscard]] Value get(const Path& path) const;

  [[nodiscard]] bool has(const Path& path) const;

  /// Fold the tree with `rule` starting from the root path [sender].
  [[nodiscard]] Value resolve(const Resolver& rule) const;

  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::size_t stored() const { return values_.size(); }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

 private:
  [[nodiscard]] Value resolve_at(const Path& path, const Resolver& rule) const;

  NodeId self_;
  NodeId sender_;
  std::vector<NodeId> nodes_;
  int depth_;
  std::unordered_map<Path, Value> values_;
};

/// BYZ(t,m)'s rule: VOTE(n_sub - 1 - m, n_sub - 1). The fixed `m` threads
/// through every level of the recursion (the paper: "the values of n and t
/// change at each level of the recursion, however, the value of m remains
/// fixed").
class ByzResolver final : public Resolver {
 public:
  explicit ByzResolver(int m);
  [[nodiscard]] Value resolve(int n_sub,
                              std::span<const Value> w) const override;

 private:
  int m_;
};

/// Lamport OM(m)'s rule: simple majority, default on no-majority.
class MajorityResolver final : public Resolver {
 public:
  [[nodiscard]] Value resolve(int n_sub,
                              std::span<const Value> w) const override;
};

/// Point-to-point messages of one EIG instance with `n` nodes unfolding
/// over `depth` rounds and no omissions: round r carries one message per
/// length-r relay chain of distinct nodes starting at the sender, i.e.
/// sum over r in [1, depth] of (n-1)(n-2)...(n-r). Every EIG-shaped
/// protocol's analytic count — BYZ(t,m), OM(m), crusader, IC — is this
/// formula at its depth (see byz_message_count / om_message_count /
/// crusader_message_count / ic_message_count).
[[nodiscard]] std::uint64_t eig_message_count(int n, int depth);

}  // namespace da::protocols
