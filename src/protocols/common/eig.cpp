#include "protocols/common/eig.hpp"

#include <algorithm>

#include "protocols/common/vote.hpp"
#include "util/contracts.hpp"

namespace da::protocols {

EigTree::EigTree(NodeId self, NodeId sender, std::vector<NodeId> nodes,
                 int depth)
    : self_(self), sender_(sender), nodes_(std::move(nodes)), depth_(depth) {
  DA_EXPECTS(depth_ >= 1);
  DA_EXPECTS(static_cast<std::size_t>(depth_) <= Path::kMaxLen);
  DA_EXPECTS(std::find(nodes_.begin(), nodes_.end(), sender_) != nodes_.end());
  DA_EXPECTS(std::find(nodes_.begin(), nodes_.end(), self_) != nodes_.end());
  std::sort(nodes_.begin(), nodes_.end());
}

void EigTree::set(const Path& path, Value v) {
  DA_EXPECTS(!path.empty() && path.front() == sender_);
  DA_EXPECTS(static_cast<int>(path.size()) <= depth_);
  values_.emplace(path, v);  // first write wins
}

Value EigTree::get(const Path& path) const {
  const auto it = values_.find(path);
  return it == values_.end() ? Value::def() : it->second;
}

bool EigTree::has(const Path& path) const { return values_.contains(path); }

Value EigTree::resolve(const Resolver& rule) const {
  Path root;
  root.push_back(sender_);
  return resolve_at(root, rule);
}

Value EigTree::resolve_at(const Path& path, const Resolver& rule) const {
  if (static_cast<int>(path.size()) == depth_) return get(path);

  // Sub-instance size: the recursion drops one node per level.
  const int n_sub = static_cast<int>(nodes_.size()) -
                    static_cast<int>(path.size()) + 1;

  std::vector<Value> w;
  w.reserve(static_cast<std::size_t>(n_sub) - 1);
  // w_i: the value this receiver heard directly through `path`.
  w.push_back(get(path));
  // w_j: recursively resolved values of the other sub-receivers.
  for (NodeId j : nodes_) {
    if (j == self_ || path.contains(j)) continue;
    w.push_back(resolve_at(path.extended(j), rule));
  }
  DA_ENSURES(static_cast<int>(w.size()) == n_sub - 1);
  return rule.resolve(n_sub, w);
}

ByzResolver::ByzResolver(int m) : m_(m) { DA_EXPECTS(m >= 0); }

Value ByzResolver::resolve(int n_sub, std::span<const Value> w) const {
  const int alpha = n_sub - 1 - m_;
  DA_EXPECTS(alpha >= 1);
  return vote(w, static_cast<std::size_t>(alpha));
}

Value MajorityResolver::resolve(int n_sub, std::span<const Value> w) const {
  (void)n_sub;
  return majority(w);
}

std::uint64_t eig_message_count(int n, int depth) {
  DA_EXPECTS(n >= 2 && depth >= 1);
  std::uint64_t total = 0;
  std::uint64_t level = 1;
  for (int r = 1; r <= depth && r < n; ++r) {
    level *= static_cast<std::uint64_t>(n - r);
    total += level;
  }
  return total;
}

}  // namespace da::protocols
