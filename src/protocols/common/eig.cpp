#include "protocols/common/eig.hpp"

#include <algorithm>
#include <bit>

#include "protocols/common/vote.hpp"
#include "util/contracts.hpp"

namespace da::protocols {

EigTree::EigTree(NodeId self, NodeId sender, std::vector<NodeId> nodes,
                 int depth)
    : self_(self), sender_(sender), nodes_(std::move(nodes)), depth_(depth) {
  DA_EXPECTS(depth_ >= 1);
  DA_EXPECTS(static_cast<std::size_t>(depth_) <= Path::kMaxLen);
  std::sort(nodes_.begin(), nodes_.end());
  DA_EXPECTS(!nodes_.empty() && nodes_.front() >= 0);
  DA_EXPECTS(std::adjacent_find(nodes_.begin(), nodes_.end()) ==
             nodes_.end());

  rank_of_.assign(static_cast<std::size_t>(nodes_.back()) + 1, -1);
  for (std::size_t r = 0; r < nodes_.size(); ++r) {
    rank_of_[static_cast<std::size_t>(nodes_[r])] =
        static_cast<std::int16_t>(r);
  }
  DA_EXPECTS(is_participant(sender_));
  DA_EXPECTS(is_participant(self_));
  const int sender_rank = rank_of_[static_cast<std::size_t>(sender_)];
  if (self_ != sender_) {
    exclude_rank_ = rank_of_[static_cast<std::size_t>(self_)];
  }

  layout_ = EigLayout::get(static_cast<int>(nodes_.size()), sender_rank,
                           depth_);
  values_.assign(layout_->size(), Value::def());
  present_.assign(layout_->size(), 0);
}

std::uint32_t EigTree::ordinal_of(const Path& path) const {
  DA_EXPECTS(!path.empty() && path.front() == sender_);
  DA_EXPECTS(static_cast<int>(path.size()) <= depth_);
  const EigLayout& layout = *layout_;
  std::uint64_t mask = 1ULL << layout.sender_rank();
  std::uint32_t ord = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    DA_EXPECTS(is_participant(path[i]));
    const int rank = rank_of_[static_cast<std::size_t>(path[i])];
    const std::uint64_t bit = 1ULL << rank;
    DA_EXPECTS((mask & bit) == 0);  // hops pairwise distinct
    // Child index = rank's position among the ranks not yet on the path.
    const int child =
        rank - std::popcount(mask & (bit - 1));
    ord = layout.child_begin(ord, static_cast<int>(i) - 1) +
          static_cast<std::uint32_t>(child);
    mask |= bit;
  }
  return ord;
}

void EigTree::set(const Path& path, Value v) {
  const std::uint32_t ord = ordinal_of(path);
  DA_EXPECTS(present_[ord] == 0);  // first (and only) write per slot
  values_[ord] = v;
  present_[ord] = 1;
  ++stored_;
}

bool EigTree::set_if_absent(const Path& path, Value v) {
  const std::uint32_t ord = ordinal_of(path);
  if (present_[ord] != 0) return false;
  values_[ord] = v;
  present_[ord] = 1;
  ++stored_;
  return true;
}

Value EigTree::get(const Path& path) const { return values_[ordinal_of(path)]; }

bool EigTree::has(const Path& path) const {
  return present_[ordinal_of(path)] != 0;
}

Value EigTree::resolve(const Resolver& rule) const {
  const EigLayout& layout = *layout_;
  if (depth_ == 1) return values_[0];

  const int n = static_cast<int>(nodes_.size());
  // Resolved values of the level below the one being folded, indexed by
  // in-level position. Leaves resolve to their stored (or V_d) values.
  // Scratch buffers are thread-local so the per-execution resolve (once
  // per process, the checkpointed searches' second-hottest call) is
  // allocation-free at steady state; resolve never re-enters itself.
  static thread_local std::vector<Value> below;
  static thread_local std::vector<Value> folded;
  static thread_local std::vector<Value> w;
  below.assign(values_.begin() + layout.level_offset(depth_ - 1),
               values_.begin() + layout.level_offset(depth_));
  w.reserve(static_cast<std::size_t>(n));

  for (int r = depth_ - 2; r >= 0; --r) {
    const std::uint32_t lo = layout.level_offset(r);
    const std::uint32_t hi = layout.level_offset(r + 1);
    const int kids = layout.child_count(r);
    folded.assign(hi - lo, Value::def());
    for (std::uint32_t ord = lo; ord < hi; ++ord) {
      // Paths through this receiver are never consumed by an ancestor
      // (the recursion skips j == self), so skip the whole subtree.
      if (exclude_rank_ >= 0 && layout.contains(ord, exclude_rank_)) {
        continue;
      }
      // w_1: the value this receiver heard directly through the path;
      // w_j: resolved values of the other sub-receivers, ascending rank.
      w.clear();
      w.push_back(values_[ord]);
      const std::uint32_t child0 = layout.child_begin(ord, r);
      for (int k = 0; k < kids; ++k) {
        const std::uint32_t child = child0 + static_cast<std::uint32_t>(k);
        if (layout.edge(child) == exclude_rank_) continue;
        w.push_back(below[child - hi]);
      }
      // Sub-instance size: the recursion drops one node per level.
      const int n_sub = n - r;
      DA_ENSURES(static_cast<int>(w.size()) == n_sub - 1);
      folded[ord - lo] = rule.resolve(n_sub, w);
    }
    below.swap(folded);
  }
  return below[0];
}

ByzResolver::ByzResolver(int m) : m_(m) { DA_EXPECTS(m >= 0); }

Value ByzResolver::resolve(int n_sub, std::span<const Value> w) const {
  const int alpha = n_sub - 1 - m_;
  DA_EXPECTS(alpha >= 1);
  return vote(w, static_cast<std::size_t>(alpha));
}

Value MajorityResolver::resolve(int n_sub, std::span<const Value> w) const {
  (void)n_sub;
  return majority(w);
}

std::uint64_t eig_message_count(int n, int depth) {
  DA_EXPECTS(n >= 2 && depth >= 1);
  std::uint64_t total = 0;
  std::uint64_t level = 1;
  for (int r = 1; r <= depth && r < n; ++r) {
    level *= static_cast<std::uint64_t>(n - r);
    total += level;
  }
  return total;
}

}  // namespace da::protocols
