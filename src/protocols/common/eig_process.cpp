#include "protocols/common/eig_process.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace da::protocols {

EigProcess::EigProcess(Params params)
    : params_(std::move(params)),
      tree_(params_.self, params_.sender, params_.nodes, params_.depth) {
  DA_EXPECTS(params_.resolver != nullptr);
  DA_EXPECTS(params_.depth >= 1);
  if (params_.self == params_.sender) {
    DA_EXPECTS(!params_.input.is_default());
  }
}

std::vector<sim::Message> EigProcess::start() {
  std::vector<sim::Message> out;
  if (params_.self != params_.sender) return out;
  Path root;
  root.push_back(params_.sender);
  for (NodeId to : tree_.nodes()) {
    if (to == params_.self) continue;
    out.push_back(sim::Message{.from = params_.self,
                               .to = to,
                               .round = 0,
                               .path = root,
                               .value = params_.input});
  }
  return out;
}

bool EigProcess::valid_message(int round, const sim::Message& msg) const {
  if (msg.to != params_.self) return false;
  if (static_cast<int>(msg.path.size()) != round + 1) return false;
  if (msg.path.front() != params_.sender) return false;
  if (msg.path.back() != msg.from) return false;
  if (!msg.path.distinct()) return false;
  if (msg.path.contains(params_.self)) return false;
  // Every relayer must be a participant.
  for (NodeId hop : msg.path) {
    if (!tree_.is_participant(hop)) return false;
  }
  return true;
}

std::vector<sim::Message> EigProcess::on_round(
    int round, const std::vector<sim::Message>& inbox) {
  // The final round (and the sender in every round) stores without
  // relaying, so the fresh-path bookkeeping below is skipped entirely —
  // the heaviest round of every execution allocates nothing here.
  if (round + 1 >= params_.depth || params_.self == params_.sender) {
    for (const sim::Message& msg : inbox) {
      if (!valid_message(round, msg)) continue;
      // Duplicate deliveries lose to the first write (set_if_absent).
      tree_.set_if_absent(msg.path, msg.value);
    }
    return {};
  }

  std::vector<Path> fresh;
  for (const sim::Message& msg : inbox) {
    if (!valid_message(round, msg)) continue;
    if (!tree_.set_if_absent(msg.path, msg.value)) continue;  // duplicate
    fresh.push_back(msg.path);
  }

  std::vector<sim::Message> out;
  // Relay each value received this round with our id appended. Omitted
  // incoming messages are not re-materialized: the downstream receiver
  // observes our silence for that path as V_d, exactly as we did.
  for (const Path& path : fresh) {
    const Path extended = path.extended(params_.self);
    for (NodeId to : tree_.nodes()) {
      if (to == params_.self || extended.contains(to)) continue;
      out.push_back(sim::Message{.from = params_.self,
                                 .to = to,
                                 .round = round + 1,
                                 .path = extended,
                                 .value = tree_.get(path)});
    }
  }
  return out;
}

Value EigProcess::decide() const {
  if (params_.self == params_.sender) return params_.input;
  return tree_.resolve(*params_.resolver);
}

std::unique_ptr<sim::Process> EigProcess::clone() const {
  auto copy = std::make_unique<EigProcess>(params_);
  copy->tree_ = tree_;
  return copy;
}

void EigProcess::assign_from(const sim::Process& other) {
  const auto& o = dynamic_cast<const EigProcess&>(other);
  DA_EXPECTS(params_.self == o.params_.self &&
             params_.sender == o.params_.sender &&
             params_.depth == o.params_.depth);
  tree_ = o.tree_;  // same shape: vector copy-assigns reuse capacity
}

std::vector<std::unique_ptr<sim::Process>> make_eig_processes(
    int n, NodeId sender, Value input, int depth,
    std::shared_ptr<const Resolver> resolver) {
  DA_EXPECTS(n >= 2);
  static const obs::Counter instances("protocol.eig.instances");
  instances.add();
  DA_EXPECTS(sender >= 0 && sender < n);
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes[static_cast<std::size_t>(i)] = i;

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (NodeId self = 0; self < n; ++self) {
    procs.push_back(std::make_unique<EigProcess>(EigProcess::Params{
        .self = self,
        .sender = sender,
        .nodes = nodes,
        .depth = depth,
        .input = self == sender ? input : Value::def(),
        .resolver = resolver}));
  }
  return procs;
}

}  // namespace da::protocols
