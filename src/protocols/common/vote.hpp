#pragma once

#include <cstddef>
#include <span>

#include "util/value.hpp"

namespace da::protocols {

/// The paper's VOTE(alpha, beta) of beta values (Section 4):
///
///   "Define VOTE(alpha, beta) of values w_1..w_beta as phi if at least
///    alpha of the values are equal to phi, else VOTE is defined to be the
///    default value V_d. Also, in case of a tie, define VOTE = V_d."
///
/// Concretely: if exactly one value reaches the alpha threshold the vote is
/// that value; if none does, or if two or more distinct values reach it
/// (a tie, possible when 2*alpha <= beta), the vote is V_d. The default
/// value itself may win the vote (the result is then V_d anyway).
///
/// Examples from the paper: VOTE(2,4) of {1,2,2,3} = 2;
/// VOTE(2,4) of {1,2,0,3} = V_d; VOTE(2,4) of {1,2,2,1} = V_d (tie).
[[nodiscard]] Value vote(std::span<const Value> values, std::size_t alpha);

/// Simple-majority resolve used by Lamport's OM(m): the value held by more
/// than half of the inputs, V_d when no strict majority exists. Equivalent
/// to vote(values, floor(beta/2)+1).
[[nodiscard]] Value majority(std::span<const Value> values);

/// The external voter of Section 3: k-out-of-n vote ("(m+u)-out-of-(2m+u)
/// vote of 2m+u values is phi if (m+u) values are phi, default value
/// otherwise"). Identical semantics to vote() with alpha = k.
[[nodiscard]] Value k_of_n_vote(std::span<const Value> values, std::size_t k);

}  // namespace da::protocols
