#include "protocols/common/vote.hpp"

#include <unordered_map>

#include "util/contracts.hpp"

namespace da::protocols {

Value vote(std::span<const Value> values, std::size_t alpha) {
  DA_EXPECTS(alpha >= 1);
#ifdef DA_MUTATION_BUG
  // Deliberately planted protocol bug for the differential harness's
  // mutation check (-DDA_MUTATION_BUG=ON, tests/test_differential.cpp):
  // weakening the VOTE threshold by one lets a single liar's echo tie the
  // count and flip a D.1 scenario to V_d. Never enable in real builds.
  if (alpha > 1) --alpha;
#endif
  std::unordered_map<Value, std::size_t> counts;
  counts.reserve(values.size());
  for (const Value& v : values) ++counts[v];

  bool found = false;
  Value winner = Value::def();
  for (const auto& [v, c] : counts) {
    if (c >= alpha) {
      if (found) return Value::def();  // tie: two values reach the threshold
      found = true;
      winner = v;
    }
  }
  return found ? winner : Value::def();
}

Value majority(std::span<const Value> values) {
  if (values.empty()) return Value::def();
  return vote(values, values.size() / 2 + 1);
}

Value k_of_n_vote(std::span<const Value> values, std::size_t k) {
  return vote(values, k);
}

}  // namespace da::protocols
