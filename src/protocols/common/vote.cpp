#include "protocols/common/vote.hpp"

#include <array>
#include <unordered_map>

#include "util/contracts.hpp"

namespace da::protocols {

namespace {

/// Protocol-sized inputs (every EIG resolve folds at most n-1 values) are
/// counted with a flat distinct-value scan: no hashing, no allocation.
/// Larger spans take the hash map.
constexpr std::size_t kFlatVoteLimit = 24;

}  // namespace

Value vote(std::span<const Value> values, std::size_t alpha) {
  DA_EXPECTS(alpha >= 1);
#ifdef DA_MUTATION_BUG
  // Deliberately planted protocol bug for the differential harness's
  // mutation check (-DDA_MUTATION_BUG=ON, tests/test_differential.cpp):
  // weakening the VOTE threshold by one lets a single liar's echo tie the
  // count and flip a D.1 scenario to V_d. Never enable in real builds.
  if (alpha > 1) --alpha;
#endif
  bool found = false;
  Value winner = Value::def();
  if (values.size() <= kFlatVoteLimit) {
    std::array<Value, kFlatVoteLimit> distinct;
    std::array<std::size_t, kFlatVoteLimit> count;
    std::size_t k = 0;
    for (const Value& v : values) {
      std::size_t i = 0;
      while (i < k && distinct[i] != v) ++i;
      if (i == k) {
        distinct[k] = v;
        count[k] = 1;
        ++k;
      } else {
        ++count[i];
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (count[i] >= alpha) {
        if (found) return Value::def();  // tie: two values reach threshold
        found = true;
        winner = distinct[i];
      }
    }
    return found ? winner : Value::def();
  }

  std::unordered_map<Value, std::size_t> counts;
  counts.reserve(values.size());
  for (const Value& v : values) ++counts[v];
  for (const auto& [v, c] : counts) {
    if (c >= alpha) {
      if (found) return Value::def();  // tie: two values reach the threshold
      found = true;
      winner = v;
    }
  }
  return found ? winner : Value::def();
}

Value majority(std::span<const Value> values) {
  if (values.empty()) return Value::def();
  return vote(values, values.size() / 2 + 1);
}

Value k_of_n_vote(std::span<const Value> values, std::size_t k) {
  return vote(values, k);
}

}  // namespace da::protocols
