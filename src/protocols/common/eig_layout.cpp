#include "protocols/common/eig_layout.hpp"

#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/path.hpp"

namespace da::protocols {

EigLayout::EigLayout(int n, int sender_rank, int depth)
    : n_(n), depth_(depth), sender_rank_(sender_rank) {
  DA_EXPECTS(n >= 2 && n <= 64);  // hop_mask is a 64-bit rank bitset
  DA_EXPECTS(sender_rank >= 0 && sender_rank < n);
  DA_EXPECTS(depth >= 1);
  DA_EXPECTS(static_cast<std::size_t>(depth) <= Path::kMaxLen);

  // Level r holds the (n-1)(n-2)...(n-r) length-(r+1) relay chains.
  level_offset_.assign(static_cast<std::size_t>(depth) + 1, 0);
  std::uint32_t size = 1;
  level_offset_[0] = 0;
  for (int r = 1; r <= depth; ++r) {
    level_offset_[static_cast<std::size_t>(r)] =
        level_offset_[static_cast<std::size_t>(r - 1)] + size;
    if (r < depth) size *= static_cast<std::uint32_t>(n - r);
  }

  edge_.assign(this->size(), 0);
  hop_mask_.assign(this->size(), 0);
  edge_[0] = static_cast<std::uint8_t>(sender_rank);
  hop_mask_[0] = 1ULL << sender_rank;
  for (int r = 0; r + 1 < depth; ++r) {
    const std::uint32_t lo = level_offset(r);
    const std::uint32_t hi = level_offset(r + 1);
    for (std::uint32_t ord = lo; ord < hi; ++ord) {
      std::uint32_t child = child_begin(ord, r);
      const std::uint64_t mask = hop_mask_[ord];
      for (int rank = 0; rank < n; ++rank) {
        if ((mask >> rank) & 1u) continue;
        edge_[child] = static_cast<std::uint8_t>(rank);
        hop_mask_[child] = mask | (1ULL << rank);
        ++child;
      }
      DA_ENSURES(child == child_begin(ord, r) +
                              static_cast<std::uint32_t>(child_count(r)));
    }
  }
}

std::shared_ptr<const EigLayout> EigLayout::get(int n, int sender_rank,
                                                int depth) {
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 32) |
                            (static_cast<std::uint64_t>(sender_rank) << 16) |
                            static_cast<std::uint64_t>(depth);

  // Per-thread memo: sweep shards resolve the same few shapes over and
  // over; after the first lookup a shard never contends on the mutex.
  thread_local std::unordered_map<std::uint64_t,
                                  std::shared_ptr<const EigLayout>>
      local;
  if (const auto it = local.find(key); it != local.end()) return it->second;

  static std::mutex mutex;
  static std::unordered_map<std::uint64_t, std::shared_ptr<const EigLayout>>
      shared;
  static const obs::Counter built("protocol.eig.layouts_built");

  std::shared_ptr<const EigLayout> layout;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    auto& slot = shared[key];
    if (slot == nullptr) {
      slot = std::shared_ptr<const EigLayout>(
          new EigLayout(n, sender_rank, depth));
      built.add();
    }
    layout = slot;
  }
  local.emplace(key, layout);
  return layout;
}

}  // namespace da::protocols
