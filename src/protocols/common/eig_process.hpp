#pragma once

#include <memory>
#include <vector>

#include "protocols/common/eig.hpp"
#include "sim/process.hpp"

namespace da::protocols {

/// One node's execution of an EIG-family protocol (BYZ(m,m), OM(m)): the
/// sender broadcasts in round 0; each subsequent round every receiver
/// relays the values it received with its own id appended to the path;
/// after `depth` rounds the receiver folds its tree with the protocol's
/// resolver.
///
/// Receivers validate structure strictly — a message is stored only if its
/// path has the right length for the round, starts at the sender, ends at
/// the actual transmitter, repeats no node, and does not contain the
/// receiver. Anything malformed is ignored, which a fault-free receiver
/// cannot distinguish from an omission (and an omission reads as V_d).
class EigProcess final : public sim::Process {
 public:
  struct Params {
    NodeId self = kNoNode;
    NodeId sender = kNoNode;
    std::vector<NodeId> nodes;    // all participants, sender included
    int depth = 1;                // communication rounds
    Value input = Value::def();   // the sender's value (senders only)
    std::shared_ptr<const Resolver> resolver;  // shared: facades may hand out processes
  };

  explicit EigProcess(Params params);

  [[nodiscard]] NodeId id() const override { return params_.self; }
  [[nodiscard]] int total_rounds() const override { return params_.depth; }
  [[nodiscard]] std::vector<sim::Message> start() override;
  [[nodiscard]] std::vector<sim::Message> on_round(
      int round, const std::vector<sim::Message>& inbox) override;
  [[nodiscard]] Value decide() const override;

  /// Checkpoint/fork support: the flat EigTree arena makes both plain
  /// vector copies (assign_from reuses the target's storage).
  [[nodiscard]] std::unique_ptr<sim::Process> clone() const override;
  void assign_from(const sim::Process& other) override;

  /// The receiver's gathered tree (for diagnostics and tests).
  [[nodiscard]] const EigTree& tree() const { return tree_; }

 private:
  [[nodiscard]] bool valid_message(int round, const sim::Message& msg) const;

  Params params_;
  EigTree tree_;
};

/// Builds the full process vector for one protocol instance over nodes
/// 0..n-1 with the given sender/value/depth/resolver.
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_eig_processes(
    int n, NodeId sender, Value input, int depth,
    std::shared_ptr<const Resolver> resolver);

}  // namespace da::protocols
