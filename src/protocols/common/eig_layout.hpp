#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace da::protocols {

/// The dense memory layout of one pruned EIG tree, shared by every
/// receiver of an instance (and, through the process-wide cache, by every
/// instance of the same shape across sweep shards).
///
/// A layout is a pure function of (n, sender_rank, depth), expressed in
/// *rank space*: participants are identified by their index in the sorted
/// node list, so trees over {0..n-1} and over any other n-element id set
/// share one layout. Slots are numbered level by level:
///
///   level r        paths of length r+1 (the root [sender] is level 0)
///   level_offset   level r occupies ordinals [offset(r), offset(r+1))
///   child block    the node at in-level position k of level r owns the
///                  contiguous block of child_count(r) = n-1-r slots
///                  starting at offset(r+1) + k*(n-1-r), ordered by
///                  ascending child rank
///
/// Two per-slot tables make traversals index-only: `edge(ord)` is the rank
/// of the slot's last hop, and `hop_mask(ord)` is the bitset of every rank
/// on its path (hence the n <= 64 limit). Both are receiver-independent,
/// which is what lets all n processes of an instance share the layout:
/// a receiver prunes "paths through me" by testing its own rank against
/// the mask, at resolve time, without owning a private tree shape.
class EigLayout {
 public:
  /// Cached lookup: builds the layout on first use of a shape and returns
  /// the shared instance afterwards. Thread-safe; each thread additionally
  /// memoizes its last lookups, so sweep shards hitting the same (n,
  /// sender, depth) over millions of executions never touch the shared
  /// mutex in steady state.
  [[nodiscard]] static std::shared_ptr<const EigLayout> get(int n,
                                                            int sender_rank,
                                                            int depth);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] int sender_rank() const { return sender_rank_; }

  /// Total number of slots (all levels).
  [[nodiscard]] std::uint32_t size() const { return level_offset_.back(); }

  /// First ordinal of level `r`; `level_offset(depth)` == size().
  [[nodiscard]] std::uint32_t level_offset(int r) const {
    return level_offset_[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] std::uint32_t level_size(int r) const {
    return level_offset(r + 1) - level_offset(r);
  }

  /// Children per slot of level `r` (one per rank not yet on the path).
  [[nodiscard]] int child_count(int r) const { return n_ - 1 - r; }

  /// First ordinal of the child block of the level-`r` slot `ord`.
  [[nodiscard]] std::uint32_t child_begin(std::uint32_t ord, int r) const {
    return level_offset(r + 1) +
           (ord - level_offset(r)) *
               static_cast<std::uint32_t>(child_count(r));
  }

  /// Rank of the slot's last hop (the relayer the slot's value came from).
  [[nodiscard]] int edge(std::uint32_t ord) const { return edge_[ord]; }

  /// Bitset of every rank on the slot's path, sender included.
  [[nodiscard]] std::uint64_t hop_mask(std::uint32_t ord) const {
    return hop_mask_[ord];
  }

  /// True if `rank` lies on the slot's path.
  [[nodiscard]] bool contains(std::uint32_t ord, int rank) const {
    return (hop_mask_[ord] >> rank) & 1u;
  }

  EigLayout(const EigLayout&) = delete;
  EigLayout& operator=(const EigLayout&) = delete;

 private:
  EigLayout(int n, int sender_rank, int depth);

  int n_;
  int depth_;
  int sender_rank_;
  std::vector<std::uint32_t> level_offset_;  // depth+1 entries
  std::vector<std::uint8_t> edge_;           // per slot: rank of last hop
  std::vector<std::uint64_t> hop_mask_;      // per slot: ranks on the path
};

}  // namespace da::protocols
