#include "protocols/authenticated/sm.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace da::protocols::authenticated {

SmProcess::SmProcess(Params params) : params_(std::move(params)) {
  DA_EXPECTS(params_.authority != nullptr);
  DA_EXPECTS(params_.m >= 0);
  DA_EXPECTS(static_cast<std::size_t>(params_.m) + 1 <= Path::kMaxLen);
  std::sort(params_.nodes.begin(), params_.nodes.end());
  DA_EXPECTS(std::binary_search(params_.nodes.begin(), params_.nodes.end(),
                                params_.self));
  DA_EXPECTS(std::binary_search(params_.nodes.begin(), params_.nodes.end(),
                                params_.sender));
  if (params_.self == params_.sender) {
    DA_EXPECTS(!params_.input.is_default());
  }
}

std::vector<sim::Message> SmProcess::start() {
  std::vector<sim::Message> out;
  if (params_.self != params_.sender) return out;
  Path chain;
  chain.push_back(params_.sender);
  const std::uint64_t tag =
      params_.authority->chain_tag(chain, params_.input);
  for (NodeId to : params_.nodes) {
    if (to == params_.self) continue;
    out.push_back(sim::Message{.from = params_.self,
                               .to = to,
                               .round = 0,
                               .path = chain,
                               .value = params_.input,
                               .aux = static_cast<std::int64_t>(tag)});
  }
  return out;
}

bool SmProcess::valid_message(int round, const sim::Message& msg) const {
  if (msg.to != params_.self) return false;
  if (static_cast<int>(msg.path.size()) != round + 1) return false;
  if (msg.path.front() != params_.sender) return false;
  if (msg.path.back() != msg.from) return false;
  if (!msg.path.distinct()) return false;
  if (msg.path.contains(params_.self)) return false;
  for (NodeId hop : msg.path) {
    if (!std::binary_search(params_.nodes.begin(), params_.nodes.end(),
                            hop)) {
      return false;
    }
  }
  // The crux: the signature chain must verify. A tampered value cannot
  // carry a valid chain unless every signer colluded.
  return params_.authority->verify_chain(msg.path, msg.value,
                                         static_cast<std::uint64_t>(msg.aux));
}

std::vector<sim::Message> SmProcess::on_round(
    int round, const std::vector<sim::Message>& inbox) {
  std::vector<sim::Message> out;
  if (params_.self == params_.sender) return out;
  for (const sim::Message& msg : inbox) {
    if (!valid_message(round, msg)) continue;
    if (!accepted_.insert(msg.value).second) continue;  // already known
    if (static_cast<int>(msg.path.size()) > params_.m) continue;  // chain full
    // Countersign and relay the newly learned value.
    const Path extended = msg.path.extended(params_.self);
    const std::uint64_t tag = params_.authority->sign(
        params_.self, msg.value, static_cast<std::uint64_t>(msg.aux));
    for (NodeId to : params_.nodes) {
      if (to == params_.self || extended.contains(to)) continue;
      out.push_back(sim::Message{.from = params_.self,
                                 .to = to,
                                 .round = round + 1,
                                 .path = extended,
                                 .value = msg.value,
                                 .aux = static_cast<std::int64_t>(tag)});
    }
  }
  return out;
}

Value SmProcess::decide() const {
  if (params_.self == params_.sender) return params_.input;
  // choice(V): singleton -> the value; empty or ambiguous -> V_d.
  if (accepted_.size() == 1) return *accepted_.begin();
  return Value::def();
}

std::unique_ptr<sim::Process> SmProcess::clone() const {
  auto copy = std::make_unique<SmProcess>(params_);
  copy->accepted_ = accepted_;
  return copy;
}

void SmProcess::assign_from(const sim::Process& other) {
  const auto& o = dynamic_cast<const SmProcess&>(other);
  DA_EXPECTS(params_.self == o.params_.self &&
             params_.sender == o.params_.sender && params_.m == o.params_.m);
  accepted_ = o.accepted_;
}

std::vector<std::unique_ptr<sim::Process>> make_sm_processes(
    int n, int m, NodeId sender, Value value,
    const SignatureAuthority& authority) {
  DA_EXPECTS(n >= 2);
  static const obs::Counter instances("protocol.sm.instances");
  instances.add();
  DA_EXPECTS(sender >= 0 && sender < n);
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes[static_cast<std::size_t>(i)] = i;

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (NodeId self = 0; self < n; ++self) {
    procs.push_back(std::make_unique<SmProcess>(SmProcess::Params{
        .self = self,
        .sender = sender,
        .nodes = nodes,
        .m = m,
        .input = self == sender ? value : Value::def(),
        .authority = &authority}));
  }
  return procs;
}

namespace {

class SigningEquivocator final : public sim::Adversary {
 public:
  SigningEquivocator(const SignatureAuthority& authority,
                     std::vector<NodeId> faulty, Value a, Value b)
      : authority_(authority), faulty_(std::move(faulty)), a_(a), b_(b) {
    std::sort(faulty_.begin(), faulty_.end());
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const bool chain_all_faulty = std::all_of(
        msg.path.begin(), msg.path.end(), [this](NodeId hop) {
          return std::binary_search(faulty_.begin(), faulty_.end(), hop);
        });
    if (!chain_all_faulty) return msg;  // cannot re-sign honest signatures
    sim::Message out = msg;
    out.value = msg.to % 2 == 0 ? a_ : b_;
    out.aux = static_cast<std::int64_t>(
        authority_.chain_tag(out.path, out.value));
    return out;
  }

 private:
  const SignatureAuthority& authority_;
  std::vector<NodeId> faulty_;
  Value a_;
  Value b_;
};

class BlindTamperer final : public sim::Adversary {
 public:
  explicit BlindTamperer(Value lie) : lie_(lie) {}
  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    sim::Message out = msg;
    out.value = lie_;  // chain tag left stale: receivers will reject
    return out;
  }

 private:
  Value lie_;
};

}  // namespace

std::unique_ptr<sim::Adversary> signing_equivocator(
    const SignatureAuthority& authority, std::vector<NodeId> faulty, Value a,
    Value b) {
  return std::make_unique<SigningEquivocator>(authority, std::move(faulty),
                                              a, b);
}

std::unique_ptr<sim::Adversary> blind_tamperer(Value lie) {
  return std::make_unique<BlindTamperer>(lie);
}

}  // namespace da::protocols::authenticated
