#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/path.hpp"
#include "util/value.hpp"

namespace da::protocols::authenticated {

/// Simulated PKI for the signed-messages algorithm SM(m) of Lamport,
/// Shostak & Pease (the paper's reference [7], §A4).
///
/// A signature is a 64-bit tag binding (signer, value, previous-chain
/// tag). Per-node secrets never leave this registry; the Byzantine
/// adversaries in `faults/` rewrite message fields blindly, so altering a
/// signed value without the signer's secret produces an invalid chain —
/// assumption A4 ("a loyal general's signature cannot be forged") holds by
/// construction. Forging by 64-bit collision is ignored, as in practice.
///
/// Signing-capable adversaries (below) model *traitorous* signers: they
/// may re-sign arbitrary values with the secrets of faulty nodes only.
class SignatureAuthority {
 public:
  SignatureAuthority(std::uint64_t seed, int n);

  [[nodiscard]] int n() const { return static_cast<int>(secrets_.size()); }

  /// Tag for `signer` signing (value, previous tag).
  [[nodiscard]] std::uint64_t sign(NodeId signer, Value value,
                                   std::uint64_t previous) const;

  /// Verifies the whole chain: path[0] signed the value first, each later
  /// hop countersigned. `tag` must equal the accumulated tag.
  [[nodiscard]] bool verify_chain(const Path& path, Value value,
                                  std::uint64_t tag) const;

  /// Accumulated tag for a chain of signers (used by honest processes and
  /// by signing adversaries for all-faulty chains).
  [[nodiscard]] std::uint64_t chain_tag(const Path& path, Value value) const;

 private:
  std::vector<std::uint64_t> secrets_;
};

}  // namespace da::protocols::authenticated
