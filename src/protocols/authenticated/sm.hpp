#pragma once

#include <memory>
#include <set>
#include <vector>

#include "protocols/authenticated/signatures.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"

namespace da::protocols::authenticated {

/// Lamport-Shostak-Pease SM(m): Byzantine agreement *with signatures*.
///
/// The sender signs its value; every receiver countersigns and relays any
/// properly signed value it has not seen, up to chains of m+1 signatures;
/// after m+1 rounds each receiver applies choice(V): the value if its
/// accepted set V is a singleton, V_d otherwise.
///
/// With unforgeable signatures SM(m) tolerates m traitors with only
/// n >= m+2 nodes — no 3m+1 bound. The interesting contrast with the
/// paper: signatures dissolve the *node-count* motivation for degradable
/// agreement, but not the *connectivity* bound (Theorem 3's cut argument
/// does not care about signatures: a cut of silent nodes still partitions
/// the network), nor the oral-message setting the paper targets.
class SmProcess final : public sim::Process {
 public:
  struct Params {
    NodeId self = kNoNode;
    NodeId sender = kNoNode;
    std::vector<NodeId> nodes;
    int m = 1;
    Value input = Value::def();
    const SignatureAuthority* authority = nullptr;  // outlives the process
  };

  explicit SmProcess(Params params);

  [[nodiscard]] NodeId id() const override { return params_.self; }
  [[nodiscard]] int total_rounds() const override { return params_.m + 1; }
  [[nodiscard]] std::vector<sim::Message> start() override;
  [[nodiscard]] std::vector<sim::Message> on_round(
      int round, const std::vector<sim::Message>& inbox) override;
  [[nodiscard]] Value decide() const override;

  /// Checkpoint/fork support: execution state is just the accepted set.
  [[nodiscard]] std::unique_ptr<sim::Process> clone() const override;
  void assign_from(const sim::Process& other) override;

  [[nodiscard]] const std::set<Value>& accepted() const { return accepted_; }

 private:
  [[nodiscard]] bool valid_message(int round, const sim::Message& msg) const;

  Params params_;
  std::set<Value> accepted_;
};

[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_sm_processes(
    int n, int m, NodeId sender, Value value,
    const SignatureAuthority& authority);

/// A traitorous *signing* equivocator: for messages whose entire signature
/// chain consists of faulty nodes, it substitutes `a` (even destinations)
/// or `b` (odd) and re-signs the chain with the faulty nodes' secrets —
/// the strongest attack signatures permit. Messages whose chain includes a
/// fault-free signer cannot be re-signed and pass unmodified.
[[nodiscard]] std::unique_ptr<sim::Adversary> signing_equivocator(
    const SignatureAuthority& authority, std::vector<NodeId> faulty, Value a,
    Value b);

/// Blind tamperer: rewrites values without re-signing (invalid chains —
/// receivers discard them, so this degenerates to omission).
[[nodiscard]] std::unique_ptr<sim::Adversary> blind_tamperer(Value lie);

}  // namespace da::protocols::authenticated
