#include "protocols/authenticated/signatures.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace da::protocols::authenticated {

SignatureAuthority::SignatureAuthority(std::uint64_t seed, int n) {
  DA_EXPECTS(n >= 1);
  secrets_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    secrets_.push_back(mix64(seed, static_cast<std::uint64_t>(i) + 1));
  }
}

std::uint64_t SignatureAuthority::sign(NodeId signer, Value value,
                                       std::uint64_t previous) const {
  DA_EXPECTS(signer >= 0 && signer < n());
  const std::uint64_t payload =
      mix64(static_cast<std::uint64_t>(value.raw()),
            value.is_default() ? 0xD0D0ULL : 0x1111ULL);
  return mix64(secrets_[static_cast<std::size_t>(signer)],
               mix64(payload, previous));
}

std::uint64_t SignatureAuthority::chain_tag(const Path& path,
                                            Value value) const {
  std::uint64_t tag = 0;
  for (NodeId signer : path) tag = sign(signer, value, tag);
  return tag;
}

bool SignatureAuthority::verify_chain(const Path& path, Value value,
                                      std::uint64_t tag) const {
  if (path.empty()) return false;
  for (NodeId signer : path) {
    if (signer < 0 || signer >= n()) return false;
  }
  return chain_tag(path, value) == tag;
}

}  // namespace da::protocols::authenticated
