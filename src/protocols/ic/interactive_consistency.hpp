#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/adversary.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::protocols::ic {

/// Builds the adversary controlling the faulty nodes for the agreement
/// instance whose sender is the given node (adversaries may differ per
/// instance — the worst case).
using AdversaryFactory =
    std::function<std::unique_ptr<sim::Adversary>(NodeId instance_sender)>;

struct IcResult {
  /// vectors[p][q] = what node p decided node q's private value is.
  std::map<NodeId, std::vector<Value>> vectors;
  std::size_t messages_sent = 0;
};

/// Pease-Shostak-Lamport interactive consistency (the paper's reference
/// [9]): every node distributes its private value with OM(m); fault-free
/// nodes end with a vector of all N values. Used for the Bhandari
/// comparison: IC-style algorithms cannot degrade gracefully past N/3
/// faults, whereas m/u-degradable agreement (m < (N-1)/3) can.
[[nodiscard]] IcResult run_interactive_consistency(
    int n, int m, const std::vector<Value>& inputs,
    const std::vector<NodeId>& faulty, const AdversaryFactory& adversaries);

/// Point-to-point messages of one IC execution with no omissions: n
/// parallel OM(m) instances, n * om_message_count(n, m).
[[nodiscard]] std::uint64_t ic_message_count(int n, int m);

/// IC validity: all fault-free nodes computed identical vectors, and the
/// entry for every fault-free node equals that node's input.
[[nodiscard]] bool interactive_consistency_holds(
    const IcResult& result, const std::vector<Value>& inputs,
    const std::vector<NodeId>& faulty);

/// Graceful-degradation metric used by experiment E8: the largest set of
/// fault-free nodes whose vectors are pairwise identical. Under IC with
/// f <= m this is all of them; past N/3 it may collapse to 1. (Bhandari:
/// no interactive-consistency algorithm keeps a nontrivial guarantee there.)
[[nodiscard]] int largest_identical_vector_group(
    const IcResult& result, const std::vector<NodeId>& faulty, int n);

}  // namespace da::protocols::ic
