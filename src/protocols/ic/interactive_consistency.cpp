#include "protocols/ic/interactive_consistency.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"
#include "util/contracts.hpp"

namespace da::protocols::ic {

IcResult run_interactive_consistency(int n, int m,
                                     const std::vector<Value>& inputs,
                                     const std::vector<NodeId>& faulty,
                                     const AdversaryFactory& adversaries) {
  DA_EXPECTS(n >= 2 && m >= 0);
  DA_EXPECTS(static_cast<int>(inputs.size()) == n);
  DA_EXPECTS(std::is_sorted(faulty.begin(), faulty.end()));

  static const obs::Counter executions("protocol.ic.executions");
  static const obs::Counter instances("protocol.ic.om_instances");
  static const obs::Counter messages("protocol.ic.messages_sent");
  executions.add();
  instances.add(static_cast<std::uint64_t>(n));

  IcResult result;
  for (NodeId p = 0; p < n; ++p) {
    result.vectors[p].assign(static_cast<std::size_t>(n), Value::def());
  }

  // One OM(m) instance per sender; fault-free nodes fill in one coordinate
  // of their vector per instance.
  for (NodeId sender = 0; sender < n; ++sender) {
    sim::RunOptions options;
    options.faulty = faulty;
    std::unique_ptr<sim::Adversary> adversary;
    if (!faulty.empty()) {
      adversary = adversaries(sender);
      options.adversary = adversary.get();
    }
    sim::SyncRunner runner(
        lamport::make_om_processes(n, m, sender,
                                   inputs[static_cast<std::size_t>(sender)]),
        options);
    sim::RunResult run = runner.run();
    result.messages_sent += run.messages_sent;
    for (const auto& [node, decision] : run.decisions) {
      result.vectors[node][static_cast<std::size_t>(sender)] = decision;
    }
  }
  messages.add(result.messages_sent);
  return result;
}

std::uint64_t ic_message_count(int n, int m) {
  DA_EXPECTS(n >= 2 && m >= 0);
  return static_cast<std::uint64_t>(n) * lamport::om_message_count(n, m);
}

bool interactive_consistency_holds(const IcResult& result,
                                   const std::vector<Value>& inputs,
                                   const std::vector<NodeId>& faulty) {
  const auto is_faulty = [&faulty](NodeId id) {
    return std::binary_search(faulty.begin(), faulty.end(), id);
  };

  const std::vector<Value>* reference = nullptr;
  for (const auto& [node, vec] : result.vectors) {
    if (is_faulty(node)) continue;
    if (reference == nullptr) {
      reference = &vec;
    } else if (vec != *reference) {
      return false;  // IC1: identical vectors
    }
    // IC2: fault-free coordinates are those nodes' true inputs.
    for (std::size_t q = 0; q < vec.size(); ++q) {
      if (!is_faulty(static_cast<NodeId>(q)) && vec[q] != inputs[q]) {
        return false;
      }
    }
  }
  return true;
}

int largest_identical_vector_group(const IcResult& result,
                                   const std::vector<NodeId>& faulty, int n) {
  const auto is_faulty = [&faulty](NodeId id) {
    return std::binary_search(faulty.begin(), faulty.end(), id);
  };
  int best = 0;
  for (NodeId p = 0; p < n; ++p) {
    if (is_faulty(p)) continue;
    int count = 0;
    for (NodeId q = 0; q < n; ++q) {
      if (!is_faulty(q) && result.vectors.at(q) == result.vectors.at(p)) {
        ++count;
      }
    }
    best = std::max(best, count);
  }
  return best;
}

}  // namespace da::protocols::ic
