#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace da::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = "da_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

void append_double(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  // %.17g round-trips every double and is deterministic, so the exposition
  // text is a pure function of the snapshot.
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  out += name;
  out += labels;
  out += ' ';
  append_double(out, value);
  out += '\n';
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string to_exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = sanitize(name);
    append_type(out, metric, "counter");
    out += metric;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = sanitize(name);
    append_type(out, metric, "gauge");
    append_sample(out, metric, "", value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = sanitize(name);
    append_type(out, metric, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      cumulative += hist.buckets[i];
      std::string labels = "{le=\"";
      if (i + 1 == hist.buckets.size()) {
        labels += "+Inf";
      } else {
        // Bucket i covers [2^(i-7), 2^(i-6)): the upper bound is 2^(i-6).
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g",
                      std::ldexp(1.0, static_cast<int>(i) - 6));
        labels += buf;
      }
      labels += "\"}";
      append_sample(out, metric + "_bucket", labels,
                    static_cast<double>(cumulative));
    }
    append_sample(out, metric + "_sum", "", hist.sum);
    out += metric + "_count " + std::to_string(hist.count) + '\n';
  }
  for (const auto& [name, sketch] : snapshot.quantiles) {
    const std::string metric = sanitize(name);
    append_type(out, metric, "summary");
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto& [label, q] : kQuantiles) {
      std::string labels = "{quantile=\"";
      labels += label;
      labels += "\"}";
      append_sample(out, metric, labels, sketch.quantile(q));
    }
    append_sample(out, metric + "_sum", "", sketch.sum());
    out += metric + "_count " + std::to_string(sketch.count()) + '\n';
  }
  return out;
}

bool write_exposition(const MetricsSnapshot& snapshot,
                      const std::string& file_path) {
  std::ofstream out(file_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_exposition(snapshot);
  return static_cast<bool>(out);
}

}  // namespace da::obs
