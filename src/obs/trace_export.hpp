#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/trace.hpp"

namespace da::obs {

/// One exported trace event: a message as one JSONL record. The export is
/// canonical — events sorted by (to, round, from, path) — so two exports
/// of indistinguishable executions are byte-identical, and `diff` output
/// is stable across runs.
struct TraceEvent {
  da::NodeId to = da::kNoNode;
  da::NodeId from = da::kNoNode;
  int round = 0;
  std::vector<da::NodeId> path;
  bool value_default = true;
  std::int64_t value = 0;
  std::int64_t aux = 0;
  std::size_t wire_bytes = 0;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static std::optional<TraceEvent> from_json(const Json& j);

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Flattens a sim::Trace into canonical event order.
[[nodiscard]] std::vector<TraceEvent> trace_events(const sim::Trace& trace);

/// Serializes `events` as JSONL: one compact JSON object per line.
[[nodiscard]] std::string trace_to_jsonl(const std::vector<TraceEvent>& events);

/// Convenience: export a sim::Trace directly.
[[nodiscard]] std::string trace_to_jsonl(const sim::Trace& trace);

/// Writes the JSONL export to `file_path`. Returns false on I/O failure.
bool write_trace_jsonl(const sim::Trace& trace, const std::string& file_path);

/// Parses a JSONL trace export. Returns nullopt (and sets `error`, if
/// non-null) on the first malformed line.
[[nodiscard]] std::optional<std::vector<TraceEvent>> read_trace_jsonl(
    const std::string& text, std::string* error = nullptr);

/// Per-node comparison of two trace exports.
struct NodeDiff {
  da::NodeId node = da::kNoNode;
  std::size_t events_a = 0;
  std::size_t events_b = 0;
  bool identical = false;
  /// Index of the first differing event in the node's canonical sequence
  /// (== min(events_a, events_b) when one side is a prefix of the other).
  std::size_t first_divergence = 0;
};

struct TraceDiff {
  std::vector<NodeDiff> nodes;  // every node present in either trace
  [[nodiscard]] bool identical() const {
    for (const NodeDiff& n : nodes) {
      if (!n.identical) return false;
    }
    return true;
  }
};

/// Compares two event lists node by node (canonical order). This is the
/// machine-checkable form of the paper's indistinguishability argument: a
/// node whose entry is `identical` cannot tell the two executions apart.
[[nodiscard]] TraceDiff diff_traces(const std::vector<TraceEvent>& a,
                                    const std::vector<TraceEvent>& b);

}  // namespace da::obs
