#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace da::obs {

std::size_t HistogramSnapshot::bucket_of(double value) {
  // Bucket i holds [2^(i-7), 2^(i-6)); everything below 2^-7 lands in
  // bucket 0 and everything at or above 2^8 in the last bucket.
  if (!(value > 0.0)) return 0;
  const int exp = static_cast<int>(std::floor(std::log2(value)));
  const int idx = exp + 7;
  if (idx < 0) return 0;
  if (idx >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

namespace {

/// Per-thread staged histogram state, merged on flush.
struct HistAccum {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, HistogramSnapshot::kBuckets> buckets{};

  void record(double value) {
    ++count;
    sum += value;
    if (value < min) min = value;
    if (value > max) max = value;
    ++buckets[HistogramSnapshot::bucket_of(value)];
  }

  void clear() { *this = HistAccum{}; }
};

struct TlsSink {
  std::vector<std::uint64_t> counters;
  std::vector<HistAccum> histograms;
  std::vector<QuantileSketch> quantiles;
};

TlsSink& tls_sink() {
  thread_local TlsSink sink;
  return sink;
}

/// Shared store behind MetricsRegistry. Counter cells are atomics in a
/// deque (stable addresses as new metrics are interned); histogram cells
/// and the name tables live under one mutex — they are touched at intern
/// time and at flush time only, never per event.
struct Store {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::deque<std::atomic<std::uint64_t>> counter_cells;
  std::unordered_map<std::string, std::uint32_t> histogram_ids;
  std::vector<std::string> histogram_names;
  std::vector<HistAccum> histogram_cells;
  std::unordered_map<std::string, std::uint32_t> quantile_ids;
  std::vector<std::string> quantile_names;
  std::vector<QuantileSketch> quantile_cells;
  std::map<std::string, double> gauges;
};

Store& store() {
  static Store* s = new Store;  // leaked: usable during static destruction
  return *s;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::uint32_t MetricsRegistry::intern_counter(std::string_view name) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.counter_ids.find(std::string(name));
  if (it != s.counter_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.counter_names.size());
  s.counter_names.emplace_back(name);
  s.counter_cells.emplace_back(0);
  s.counter_ids.emplace(std::string(name), id);
  return id;
}

std::uint32_t MetricsRegistry::intern_histogram(std::string_view name) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.histogram_ids.find(std::string(name));
  if (it != s.histogram_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.histogram_names.size());
  s.histogram_names.emplace_back(name);
  s.histogram_cells.emplace_back();
  s.histogram_ids.emplace(std::string(name), id);
  return id;
}

std::uint32_t MetricsRegistry::intern_quantile(std::string_view name) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.quantile_ids.find(std::string(name));
  if (it != s.quantile_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.quantile_names.size());
  s.quantile_names.emplace_back(name);
  s.quantile_cells.emplace_back();
  s.quantile_ids.emplace(std::string(name), id);
  return id;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
#ifndef DA_METRICS_DISABLED
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.gauges[std::string(name)] = value;
#else
  (void)name;
  (void)value;
#endif
}

void MetricsRegistry::flush_this_thread() {
  Store& s = store();
  TlsSink& sink = tls_sink();
  for (std::size_t i = 0; i < sink.counters.size(); ++i) {
    if (sink.counters[i] == 0) continue;
    s.counter_cells[i].fetch_add(sink.counters[i],
                                 std::memory_order_relaxed);
    sink.counters[i] = 0;
  }
  bool any_hist = false;
  for (const HistAccum& h : sink.histograms) {
    if (h.count != 0) {
      any_hist = true;
      break;
    }
  }
  for (const QuantileSketch& q : sink.quantiles) {
    if (!q.empty()) {
      any_hist = true;
      break;
    }
  }
  if (!any_hist) return;
  const std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t i = 0; i < sink.histograms.size(); ++i) {
    HistAccum& local = sink.histograms[i];
    if (local.count == 0) continue;
    HistAccum& cell = s.histogram_cells[i];
    cell.count += local.count;
    cell.sum += local.sum;
    if (local.min < cell.min) cell.min = local.min;
    if (local.max > cell.max) cell.max = local.max;
    for (std::size_t b = 0; b < local.buckets.size(); ++b) {
      cell.buckets[b] += local.buckets[b];
    }
    local.clear();
  }
  // Sketch merging is exact (integer buckets, bit-exact min/max), so the
  // shared cell's canonical state is independent of which thread flushes
  // first — the property the cross-jobs byte-identity tests rely on.
  for (std::size_t i = 0; i < sink.quantiles.size(); ++i) {
    QuantileSketch& local = sink.quantiles[i];
    if (local.empty()) continue;
    s.quantile_cells[i].merge(local);
    local.clear();
  }
}

MetricsSnapshot MetricsRegistry::snapshot() {
  MetricsSnapshot out;
#ifndef DA_METRICS_DISABLED
  flush_this_thread();
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
    out.counters[s.counter_names[i]] =
        s.counter_cells[i].load(std::memory_order_relaxed);
  }
  out.gauges = s.gauges;
  for (std::size_t i = 0; i < s.histogram_names.size(); ++i) {
    const HistAccum& cell = s.histogram_cells[i];
    HistogramSnapshot hs;
    hs.count = cell.count;
    hs.sum = cell.sum;
    hs.min = cell.count == 0 ? 0.0 : cell.min;
    hs.max = cell.count == 0 ? 0.0 : cell.max;
    hs.buckets = cell.buckets;
    out.histograms[s.histogram_names[i]] = hs;
  }
  for (std::size_t i = 0; i < s.quantile_names.size(); ++i) {
    out.quantiles[s.quantile_names[i]] = s.quantile_cells[i];
  }
#endif
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) {
#ifndef DA_METRICS_DISABLED
  flush_this_thread();
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.counter_ids.find(std::string(name));
  if (it == s.counter_ids.end()) return 0;
  return s.counter_cells[it->second].load(std::memory_order_relaxed);
#else
  (void)name;
  return 0;
#endif
}

void MetricsRegistry::reset() {
#ifndef DA_METRICS_DISABLED
  flush_this_thread();
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (auto& cell : s.counter_cells) {
    cell.store(0, std::memory_order_relaxed);
  }
  for (HistAccum& cell : s.histogram_cells) cell.clear();
  for (QuantileSketch& cell : s.quantile_cells) cell.clear();
  s.gauges.clear();
#endif
}

namespace detail {

void tls_counter_add(std::uint32_t id, std::uint64_t delta) {
  TlsSink& sink = tls_sink();
  if (sink.counters.size() <= id) sink.counters.resize(id + 1, 0);
  sink.counters[id] += delta;
}

void tls_histogram_record(std::uint32_t id, double value) {
  TlsSink& sink = tls_sink();
  if (sink.histograms.size() <= id) sink.histograms.resize(id + 1);
  sink.histograms[id].record(value);
}

void tls_quantile_record(std::uint32_t id, double value) {
  TlsSink& sink = tls_sink();
  if (sink.quantiles.size() <= id) sink.quantiles.resize(id + 1);
  sink.quantiles[id].record(value);
}

}  // namespace detail

}  // namespace da::obs
