#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <tuple>

#include "sim/message.hpp"

namespace da::obs {

namespace {

TraceEvent event_from_message(const sim::Message& msg) {
  TraceEvent ev;
  ev.to = msg.to;
  ev.from = msg.from;
  ev.round = msg.round;
  ev.path.assign(msg.path.begin(), msg.path.end());
  ev.value_default = msg.value.is_default();
  ev.value = msg.value.raw();
  ev.aux = msg.aux;
  ev.wire_bytes = sim::wire_size_bytes(msg);
  return ev;
}

auto event_key(const TraceEvent& ev) {
  // value/aux tiebreak keeps the order total even when an adversary or a
  // duplicating network produces several events in one (to, round, from,
  // path) slot — without it, same-slot events would keep their (runtime-
  // dependent) insertion order and byte-identity across runtimes would be
  // a coin flip.
  return std::tie(ev.to, ev.round, ev.from, ev.path, ev.value_default,
                  ev.value, ev.aux);
}

}  // namespace

Json TraceEvent::to_json() const {
  Json path_json = Json::array();
  for (const da::NodeId id : path) path_json.push_back(id);
  Json j = Json::object();
  j.set("to", to)
      .set("from", from)
      .set("round", round)
      .set("path", std::move(path_json))
      .set("value", value_default ? Json(nullptr) : Json(value))
      .set("aux", aux)
      .set("wire_bytes", wire_bytes);
  return j;
}

std::optional<TraceEvent> TraceEvent::from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  const Json* to = j.find("to");
  const Json* from = j.find("from");
  const Json* round = j.find("round");
  const Json* path = j.find("path");
  const Json* value = j.find("value");
  const Json* aux = j.find("aux");
  const Json* wire = j.find("wire_bytes");
  if (to == nullptr || !to->is_integer() || from == nullptr ||
      !from->is_integer() || round == nullptr || !round->is_integer() ||
      path == nullptr || !path->is_array() || value == nullptr ||
      aux == nullptr || !aux->is_integer() || wire == nullptr ||
      !wire->is_integer()) {
    return std::nullopt;
  }
  TraceEvent ev;
  ev.to = static_cast<da::NodeId>(to->as_int());
  ev.from = static_cast<da::NodeId>(from->as_int());
  ev.round = static_cast<int>(round->as_int());
  for (const Json& hop : path->as_array()) {
    if (!hop.is_integer()) return std::nullopt;
    ev.path.push_back(static_cast<da::NodeId>(hop.as_int()));
  }
  if (value->is_null()) {
    ev.value_default = true;
  } else if (value->is_integer()) {
    ev.value_default = false;
    ev.value = value->as_int();
  } else {
    return std::nullopt;
  }
  ev.aux = aux->as_int();
  ev.wire_bytes = static_cast<std::size_t>(wire->as_int());
  return ev;
}

std::vector<TraceEvent> trace_events(const sim::Trace& trace) {
  std::vector<TraceEvent> events;
  events.reserve(trace.total_messages());
  for (const da::NodeId node : trace.nodes()) {
    for (const sim::Message& msg : trace.received(node)) {
      events.push_back(event_from_message(msg));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return event_key(a) < event_key(b);
            });
  return events;
}

std::string trace_to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    out += ev.to_json().dump();
    out += '\n';
  }
  return out;
}

std::string trace_to_jsonl(const sim::Trace& trace) {
  return trace_to_jsonl(trace_events(trace));
}

bool write_trace_jsonl(const sim::Trace& trace, const std::string& file_path) {
  std::ofstream out(file_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << trace_to_jsonl(trace);
  return static_cast<bool>(out);
}

std::optional<std::vector<TraceEvent>> read_trace_jsonl(
    const std::string& text, std::string* error) {
  std::vector<TraceEvent> events;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    std::string parse_error;
    const std::optional<Json> j = Json::parse(line, &parse_error);
    if (!j) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return std::nullopt;
    }
    std::optional<TraceEvent> ev = TraceEvent::from_json(*j);
    if (!ev) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": not a trace event";
      }
      return std::nullopt;
    }
    events.push_back(std::move(*ev));
  }
  return events;
}

TraceDiff diff_traces(const std::vector<TraceEvent>& a,
                      const std::vector<TraceEvent>& b) {
  std::map<da::NodeId, std::pair<std::vector<const TraceEvent*>,
                                 std::vector<const TraceEvent*>>>
      by_node;
  for (const TraceEvent& ev : a) by_node[ev.to].first.push_back(&ev);
  for (const TraceEvent& ev : b) by_node[ev.to].second.push_back(&ev);

  const auto canonical = [](std::vector<const TraceEvent*>& events) {
    std::sort(events.begin(), events.end(),
              [](const TraceEvent* x, const TraceEvent* y) {
                return event_key(*x) < event_key(*y);
              });
  };

  TraceDiff diff;
  for (auto& [node, sides] : by_node) {
    canonical(sides.first);
    canonical(sides.second);
    NodeDiff nd;
    nd.node = node;
    nd.events_a = sides.first.size();
    nd.events_b = sides.second.size();
    const std::size_t common = std::min(nd.events_a, nd.events_b);
    std::size_t i = 0;
    while (i < common && *sides.first[i] == *sides.second[i]) ++i;
    nd.first_divergence = i;
    nd.identical = i == nd.events_a && i == nd.events_b;
    diff.nodes.push_back(nd);
  }
  return diff;
}

}  // namespace da::obs
