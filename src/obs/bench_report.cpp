#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

#ifndef DA_GIT_DESCRIBE
#define DA_GIT_DESCRIBE "unknown"
#endif

namespace da::obs {

namespace {

Json table_to_json(const Table& table) {
  Json header = Json::array();
  for (const std::string& cell : table.header()) header.push_back(cell);
  Json rows = Json::array();
  for (const auto& row : table.cells()) {
    Json cells = Json::array();
    for (const std::string& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  Json j = Json::object();
  j.set("name", table.name())
      .set("header", std::move(header))
      .set("rows", std::move(rows));
  return j;
}

}  // namespace

Json metrics_to_json() {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  Json histograms = Json::object();
  for (const auto& [name, hist] : snap.histograms) {
    Json buckets = Json::array();
    for (const std::uint64_t b : hist.buckets) buckets.push_back(b);
    Json h = Json::object();
    h.set("count", hist.count)
        .set("sum", hist.sum)
        .set("min", hist.min)
        .set("max", hist.max)
        .set("mean", hist.mean())
        .set("buckets", std::move(buckets));
    histograms.set(name, std::move(h));
  }
  Json quantiles = Json::object();
  for (const auto& [name, sketch] : snap.quantiles) {
    Json q = Json::object();
    q.set("count", static_cast<std::int64_t>(sketch.count()))
        .set("min", sketch.min())
        .set("max", sketch.max())
        .set("mean", sketch.mean())
        .set("p50", sketch.quantile(0.50))
        .set("p90", sketch.quantile(0.90))
        .set("p99", sketch.quantile(0.99))
        .set("p999", sketch.quantile(0.999));
    quantiles.set(name, std::move(q));
  }
  Json metrics = Json::object();
  metrics.set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms))
      .set("quantiles", std::move(quantiles));
  return metrics;
}

BenchReporter::BenchReporter(std::string bench_name, int* argc, char** argv)
    : bench_name_(std::move(bench_name)) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      json_path_ = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path_ = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke_ = true;
    } else {
      if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < *argc) {
        jobs_ = std::atoi(argv[i + 1]);
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        jobs_ = std::atoi(argv[i] + 7);
      }
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[*argc] = nullptr;
  Table::set_print_listener(
      [this](const Table& table) { tables_.push_back(table_to_json(table)); });
}

BenchReporter::~BenchReporter() {
  if (!finished_) Table::set_print_listener(nullptr);
}

void BenchReporter::add_table(const Table& table) {
  tables_.push_back(table_to_json(table));
}

int BenchReporter::finish(int status) {
  finished_ = true;
  Table::set_print_listener(nullptr);
  if (json_path_.empty()) return status;

  Json tables = Json::array();
  for (Json& t : tables_) tables.push_back(std::move(t));
  Json report = Json::object();
  report.set("bench", bench_name_)
      .set("seed", seed_)
      .set("jobs", jobs_)
      .set("git_describe", DA_GIT_DESCRIBE)
      .set("tables", std::move(tables))
      .set("metrics", metrics_to_json());

  {
    std::ofstream out(json_path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", bench_name_.c_str(),
                   json_path_.c_str());
      return 1;
    }
    out << report.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "%s: write to %s failed\n", bench_name_.c_str(),
                   json_path_.c_str());
      return 1;
    }
  }

  // Self-validate: re-read the emitted file and check it parses back into
  // a schema-conformant document, so a formatting regression fails the
  // bench-smoke ctest entries instead of silently rotting the exports.
  std::ifstream in(json_path_, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  const std::optional<Json> parsed = Json::parse(buf.str(), &error);
  if (!parsed) {
    std::fprintf(stderr, "%s: emitted JSON does not parse: %s\n",
                 bench_name_.c_str(), error.c_str());
    return 1;
  }
  if (!validate_bench_schema(*parsed, &error)) {
    std::fprintf(stderr, "%s: emitted JSON fails schema check: %s\n",
                 bench_name_.c_str(), error.c_str());
    return 1;
  }
  std::printf("[json report: %s]\n", json_path_.c_str());
  return status;
}

bool validate_bench_schema(const Json& report, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!report.is_object()) return fail("report is not an object");

  const Json* bench = report.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return fail("missing string field 'bench'");
  }
  const Json* seed = report.find("seed");
  if (seed == nullptr || !seed->is_integer()) {
    return fail("missing integer field 'seed'");
  }
  const Json* jobs = report.find("jobs");
  if (jobs == nullptr || !jobs->is_integer()) {
    return fail("missing integer field 'jobs'");
  }
  const Json* describe = report.find("git_describe");
  if (describe == nullptr || !describe->is_string()) {
    return fail("missing string field 'git_describe'");
  }

  const Json* tables = report.find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return fail("missing array field 'tables'");
  }
  for (std::size_t i = 0; i < tables->size(); ++i) {
    const Json& table = tables->at(i);
    const std::string where = "tables[" + std::to_string(i) + "]";
    if (!table.is_object()) return fail(where + " is not an object");
    const Json* name = table.find("name");
    if (name == nullptr || !name->is_string()) {
      return fail(where + " missing string 'name'");
    }
    const Json* header = table.find("header");
    if (header == nullptr || !header->is_array()) {
      return fail(where + " missing array 'header'");
    }
    const Json* rows = table.find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return fail(where + " missing array 'rows'");
    }
    for (std::size_t r = 0; r < rows->size(); ++r) {
      if (!rows->at(r).is_array() ||
          rows->at(r).size() != header->size()) {
        return fail(where + ".rows[" + std::to_string(r) +
                    "] does not match header arity");
      }
    }
  }

  const Json* metrics = report.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return fail("missing object field 'metrics'");
  }
  for (const char* section : {"counters", "gauges", "histograms", "quantiles"}) {
    const Json* s = metrics->find(section);
    if (s == nullptr || !s->is_object()) {
      return fail(std::string("metrics missing object '") + section + "'");
    }
  }
  const Json* histograms = metrics->find("histograms");
  for (const auto& [name, hist] : histograms->as_object()) {
    if (!hist.is_object()) {
      return fail("histogram '" + name + "' is not an object");
    }
    for (const char* field : {"count", "sum", "min", "max", "mean"}) {
      const Json* f = hist.find(field);
      if (f == nullptr || !f->is_number()) {
        return fail("histogram '" + name + "' missing number '" + field +
                    "'");
      }
    }
    const Json* buckets = hist.find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return fail("histogram '" + name + "' missing array 'buckets'");
    }
  }
  const Json* quantiles = metrics->find("quantiles");
  for (const auto& [name, q] : quantiles->as_object()) {
    if (!q.is_object()) {
      return fail("quantile '" + name + "' is not an object");
    }
    for (const char* field :
         {"count", "min", "max", "mean", "p50", "p90", "p99", "p999"}) {
      const Json* f = q.find(field);
      if (f == nullptr || !f->is_number()) {
        return fail("quantile '" + name + "' missing number '" + field + "'");
      }
    }
  }
  return true;
}

}  // namespace da::obs
