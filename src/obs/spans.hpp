#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace da::obs {

/// Causal span tracing for the agreement service and the three runtimes,
/// stamped in **virtual time** (service spans) or **round units** (runtime
/// phase spans) — never wall clock — so a span export is a deterministic
/// function of the execution and byte-identical across `--jobs` values
/// and runtimes (docs/OBSERVABILITY.md "Spans").
///
/// The causal tree the service emits per job:
///
///   job <id>                       arrival -> completion (or shed)
///   ├─ queue <id>                  arrival -> admission
///   └─ inst <id>/<sub>             admission -> sub-instance decision
///      ├─ round <id>/<sub>/<r>     previous tick -> this tick
///      ├─ decide <id>/<sub>        the decision instant
///      └─ recycle <id>/<sub>       slot returned to the pool
///
/// Runtime executions emit per-round *phase* spans instead (send /
/// deliver / resolve, one triple per round, stamped in round units).
///
/// Tags are (string key, int64 value) pairs — template/adversary indices,
/// message tallies, and fault-injection deltas (`inj_*`, `rule<k>`) that
/// correlate a round span with the FaultPlan rule that perturbed it.
struct Span {
  std::string name;      // job|queue|inst|round|decide|recycle|send|deliver|resolve
  std::int64_t job = -1;  // owning service job id; -1 for runtime spans
  int sub = -1;           // sub-instance (IC coordinate); -1 when n/a
  int round = -1;         // round index; -1 when n/a
  double t0 = 0.0;        // virtual time (service) or round units (runtime)
  double t1 = 0.0;
  std::string parent;     // id() of the parent span; empty = root
  std::vector<std::pair<std::string, std::int64_t>> tags;  // sorted by key

  /// Deterministic span id derived from identity, never from a counter:
  /// name[:job][.sub][#round], e.g. "round:12.0#3" or "send#2".
  [[nodiscard]] std::string id() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static std::optional<Span> from_json(const Json& j);

  friend bool operator==(const Span&, const Span&) = default;
};

/// Sorts spans into canonical export order — (t0, job, sub, lifecycle
/// rank, round, name) — and each span's tags by key. Two span sets with
/// equal contents canonicalize to identical sequences regardless of
/// emission order.
void canonicalize(std::vector<Span>& spans);

/// Canonical JSONL: one compact JSON object per line, canonical order.
[[nodiscard]] std::string spans_to_jsonl(std::vector<Span> spans);

/// Parses a JSONL span export. Returns nullopt (and sets `error`, if
/// non-null) on the first malformed line.
[[nodiscard]] std::optional<std::vector<Span>> read_spans_jsonl(
    const std::string& text, std::string* error = nullptr);

/// Writes the JSONL export to `file_path`. Returns false on I/O failure.
bool write_spans_jsonl(const std::vector<Span>& spans,
                       const std::string& file_path);

/// Per-round phase tallies for one runtime execution. The runtimes call
/// the `note_*` hooks from their dispatch/arrival/round loops (the sim
/// and event runtimes single-threaded, the threaded runtime under its
/// shared mutex — callers serialize, the sink does not lock); after the
/// run, `round_spans()` renders one send/deliver/resolve triple per round
/// plus a final decide span. Counts derive from the same per-message
/// events as the `*.messages_sent` / `*.messages_delivered` counters, so
/// runtimes that agree on those (the differential contract) export
/// byte-identical phase spans.
///
/// Under DA_METRICS_DISABLED every hook is an inline no-op and
/// `round_spans()` is empty.
class SpanSink {
 public:
#ifndef DA_METRICS_DISABLED
  void note_send(int round, std::uint64_t n);
  void note_deliver(int round, std::uint64_t n);
  void note_resolve(int round, std::uint64_t nodes);
  void note_done(int total_rounds);
  void clear();
  [[nodiscard]] std::vector<Span> round_spans() const;
#else
  void note_send(int, std::uint64_t) {}
  void note_deliver(int, std::uint64_t) {}
  void note_resolve(int, std::uint64_t) {}
  void note_done(int) {}
  void clear() {}
  [[nodiscard]] std::vector<Span> round_spans() const { return {}; }
#endif

 private:
#ifndef DA_METRICS_DISABLED
  void ensure(int round);

  std::vector<std::uint64_t> sends_;
  std::vector<std::uint64_t> delivers_;
  std::vector<std::uint64_t> resolves_;
  int total_rounds_ = -1;  // set by note_done
#endif
};

}  // namespace da::obs
