#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace da::obs {

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (docs/OBSERVABILITY.md "Quantiles"): counters and gauges as single
/// samples, histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`, quantile sketches as summaries with
/// `{quantile="0.5|0.9|0.99|0.999"}` samples. Metric names are prefixed
/// `da_` and sanitized (`.` -> `_`); the output is deterministic for a
/// given snapshot (maps iterate sorted, one fixed float format), so tests
/// can pin it byte-for-byte.
[[nodiscard]] std::string to_exposition(const MetricsSnapshot& snapshot);

/// Writes `to_exposition(snapshot)` to `file_path`; false on I/O failure.
bool write_exposition(const MetricsSnapshot& snapshot,
                      const std::string& file_path);

}  // namespace da::obs
