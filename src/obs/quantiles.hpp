#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace da::obs {

/// Streaming log-bucketed quantile sketch (HDR-histogram style) with a
/// *fixed* bucket layout, built for the repo's determinism discipline:
///
///   - `record()` is O(1): the bucket index is computed from the raw bit
///     pattern of the double (exponent + top 5 mantissa bits), no log()
///     call, no allocation, no data-dependent branches beyond clamping.
///   - `merge()` is a bucket-wise integer add plus bit-exact min/max —
///     **associative and commutative**, so merging any number of
///     thread-local sketches in any order yields byte-identical canonical
///     state (`test_spans.cpp` pins associativity with a property test).
///   - `serialize()` covers only the canonical state (count, min/max bit
///     patterns, non-zero buckets). The running `sum()` is deliberately
///     excluded: double addition is not associative, so a sum folded in
///     nondeterministic flush order may differ in the last ulp. Means are
///     for display; canonical comparisons use `serialize()`.
///
/// Layout: 32 sub-buckets per power-of-two octave over exponents
/// [kMinExp, kMaxExp), plus an underflow bucket (index 0: zero, negatives
/// and anything below 2^kMinExp) and an overflow bucket (anything at or
/// above 2^kMaxExp). Relative quantile error is bounded by the sub-bucket
/// width, 2^(1/32) - 1 ≈ 2.2%, over ~9.5e-7 .. 4096 — in the service's
/// virtual-time units that comfortably covers queue waits and decision
/// latencies; `quantile()` answers are additionally clamped to the exact
/// observed [min, max].
class QuantileSketch {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32 per octave
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 12;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Bucket index for a value. Total over all doubles: NaN, negatives and
  /// values below 2^kMinExp land in bucket 0, values >= 2^kMaxExp
  /// (including +inf) in the last bucket.
  [[nodiscard]] static std::size_t bucket_of(double value);

  /// Midpoint of a bucket's value range (0 for the underflow bucket,
  /// 2^kMaxExp for the overflow bucket).
  [[nodiscard]] static double bucket_mid(std::size_t bucket);

  void record(double value);

  /// Folds `other` into this sketch. Exact: integer bucket adds, bit-exact
  /// min/max, so merge order can never change the canonical state.
  void merge(const QuantileSketch& other);

  void clear() { *this = QuantileSketch{}; }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Display-only (see class comment); 0 when empty.
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank quantile estimate for q in [0, 1] (clamped); 0 when
  /// empty. The answer is a bucket midpoint clamped to [min(), max()].
  [[nodiscard]] double quantile(double q) const;

  /// Canonical text form: a `qsketch/1` header (count + min/max as hex bit
  /// patterns) followed by one `b <index> <count>` line per non-zero
  /// bucket. Two sketches with equal canonical state serialize
  /// byte-identically; `sum()` is excluded by design.
  [[nodiscard]] std::string serialize() const;

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;  // valid iff count_ > 0
  double max_ = 0.0;
  double sum_ = 0.0;  // non-canonical (display only)
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace da::obs
