#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace da::obs {

/// Machine-readable bench output: give every bench binary a uniform
/// `--json <path>` flag that writes the run as one JSON document with the
/// stable schema
///
///   { "bench": ..., "seed": ..., "jobs": ..., "git_describe": ...,
///     "tables": [ {"name", "header", "rows"} ... ],
///     "metrics": { "counters": {...}, "gauges": {...},
///                  "histograms": {...} } }
///
/// (documented with an example in docs/OBSERVABILITY.md). Usage:
///
///   int main(int argc, char** argv) {
///     da::obs::BenchReporter reporter("bench_foo", &argc, argv);
///     ...print tables as before (captured automatically)...
///     return reporter.finish();
///   }
///
/// The constructor strips the flags it owns (`--json`, `--smoke`) from
/// argv so the bench's own argument parsing never sees them, and installs
/// a Table print listener so every table the bench prints is captured
/// without further plumbing. `--smoke` is a convention for tiny-parameter
/// runs wired into ctest's bench-smoke label; benches that scale work
/// query `smoke()`.
class BenchReporter {
 public:
  /// `bench_name` is the value of the "bench" field. Strips owned flags
  /// from (*argc, argv) in place and records `--jobs N` if present
  /// (without stripping it — the bench parses it too).
  BenchReporter(std::string bench_name, int* argc, char** argv);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// True when `--smoke` was passed: run with tiny parameters.
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// True when `--json` was passed (finish() will write a report).
  [[nodiscard]] bool json_requested() const { return !json_path_.empty(); }

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  void set_jobs(int jobs) { jobs_ = jobs; }

  /// Adds a table explicitly (for data the bench never print()s).
  void add_table(const Table& table);

  /// Writes the JSON report (when `--json` was given), re-reads and
  /// re-parses the emitted file, and validates it against the schema.
  /// Returns `status` on success; 1 if the report could not be written or
  /// failed self-validation. Call as the bench's `return` expression.
  [[nodiscard]] int finish(int status = 0);

 private:
  std::string bench_name_;
  std::string json_path_;
  bool smoke_ = false;
  bool finished_ = false;
  std::uint64_t seed_ = 0;
  int jobs_ = 1;
  std::vector<Json> tables_;
};

/// Validates a parsed bench report against the schema above. Returns true
/// when every required top-level field is present with the right type; on
/// failure fills `error` (if non-null) with the first problem.
[[nodiscard]] bool validate_bench_schema(const Json& report,
                                         std::string* error = nullptr);

/// The current metrics registry contents as the report's "metrics" value.
[[nodiscard]] Json metrics_to_json();

}  // namespace da::obs
