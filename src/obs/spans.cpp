#include "obs/spans.hpp"

#include <algorithm>
#include <fstream>

namespace da::obs {

namespace {

/// Lifecycle order for spans sharing a start instant: parents sort before
/// the children they caused, phases in causal order.
int name_rank(const std::string& name) {
  if (name == "job") return 0;
  if (name == "queue") return 1;
  if (name == "inst") return 2;
  if (name == "send") return 3;
  if (name == "deliver") return 4;
  if (name == "resolve") return 5;
  if (name == "round") return 6;
  if (name == "decide") return 7;
  if (name == "recycle") return 8;
  return 9;
}

}  // namespace

std::string Span::id() const {
  std::string out = name;
  if (job >= 0) {
    out += ':';
    out += std::to_string(job);
  }
  if (sub >= 0) {
    out += '.';
    out += std::to_string(sub);
  }
  if (round >= 0) {
    out += '#';
    out += std::to_string(round);
  }
  return out;
}

Json Span::to_json() const {
  Json tags_json = Json::object();
  for (const auto& [key, value] : tags) tags_json.set(key, value);
  Json j = Json::object();
  j.set("id", id())
      .set("name", name)
      .set("job", job)
      .set("sub", sub)
      .set("round", round)
      .set("t0", t0)
      .set("t1", t1)
      .set("parent", parent)
      .set("tags", std::move(tags_json));
  return j;
}

std::optional<Span> Span::from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  Span s;
  const Json* name = j.find("name");
  if (name == nullptr || !name->is_string()) return std::nullopt;
  s.name = name->as_string();
  const Json* job = j.find("job");
  if (job == nullptr || !job->is_integer()) return std::nullopt;
  s.job = job->as_int();
  const Json* sub = j.find("sub");
  if (sub == nullptr || !sub->is_integer()) return std::nullopt;
  s.sub = static_cast<int>(sub->as_int());
  const Json* round = j.find("round");
  if (round == nullptr || !round->is_integer()) return std::nullopt;
  s.round = static_cast<int>(round->as_int());
  const Json* t0 = j.find("t0");
  if (t0 == nullptr || !t0->is_number()) return std::nullopt;
  s.t0 = t0->as_double();
  const Json* t1 = j.find("t1");
  if (t1 == nullptr || !t1->is_number()) return std::nullopt;
  s.t1 = t1->as_double();
  const Json* parent = j.find("parent");
  if (parent == nullptr || !parent->is_string()) return std::nullopt;
  s.parent = parent->as_string();
  const Json* tags = j.find("tags");
  if (tags == nullptr || !tags->is_object()) return std::nullopt;
  for (const auto& [key, value] : tags->as_object()) {
    if (!value.is_integer()) return std::nullopt;
    s.tags.emplace_back(key, value.as_int());
  }
  // The emitted "id" field is derived; recomputing keeps parsed spans
  // comparable with freshly built ones, but a mismatch means a hand-edited
  // file — reject it rather than silently re-derive.
  const Json* id = j.find("id");
  if (id == nullptr || !id->is_string() || id->as_string() != s.id()) {
    return std::nullopt;
  }
  return s;
}

void canonicalize(std::vector<Span>& spans) {
  for (Span& s : spans) {
    std::sort(s.tags.begin(), s.tags.end());
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    if (a.job != b.job) return a.job < b.job;
    if (a.sub != b.sub) return a.sub < b.sub;
    const int ra = name_rank(a.name);
    const int rb = name_rank(b.name);
    if (ra != rb) return ra < rb;
    if (a.round != b.round) return a.round < b.round;
    return a.name < b.name;
  });
}

std::string spans_to_jsonl(std::vector<Span> spans) {
  canonicalize(spans);
  std::string out;
  out.reserve(spans.size() * 128);
  for (const Span& s : spans) {
    out += s.to_json().dump();
    out += '\n';
  }
  return out;
}

std::optional<std::vector<Span>> read_spans_jsonl(const std::string& text,
                                                  std::string* error) {
  std::vector<Span> spans;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    std::string parse_error;
    const std::optional<Json> j = Json::parse(line, &parse_error);
    if (!j) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return std::nullopt;
    }
    std::optional<Span> s = Span::from_json(*j);
    if (!s) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": not a span record";
      }
      return std::nullopt;
    }
    spans.push_back(std::move(*s));
  }
  return spans;
}

bool write_spans_jsonl(const std::vector<Span>& spans,
                       const std::string& file_path) {
  std::ofstream out(file_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << spans_to_jsonl(spans);
  return static_cast<bool>(out);
}

#ifndef DA_METRICS_DISABLED

void SpanSink::ensure(int round) {
  const auto need = static_cast<std::size_t>(round) + 1;
  if (sends_.size() < need) {
    sends_.resize(need, 0);
    delivers_.resize(need, 0);
    resolves_.resize(need, 0);
  }
}

void SpanSink::note_send(int round, std::uint64_t n) {
  ensure(round);
  sends_[static_cast<std::size_t>(round)] += n;
}

void SpanSink::note_deliver(int round, std::uint64_t n) {
  ensure(round);
  delivers_[static_cast<std::size_t>(round)] += n;
}

void SpanSink::note_resolve(int round, std::uint64_t nodes) {
  ensure(round);
  resolves_[static_cast<std::size_t>(round)] += nodes;
}

void SpanSink::note_done(int total_rounds) { total_rounds_ = total_rounds; }

void SpanSink::clear() {
  sends_.clear();
  delivers_.clear();
  resolves_.clear();
  total_rounds_ = -1;
}

std::vector<Span> SpanSink::round_spans() const {
  // Phases of round r occupy [r, r+1) in round units: sends in the first
  // quarter, deliveries in the second, resolution in the back half. The
  // offsets are binary fractions, so the stamps are exact doubles.
  std::vector<Span> out;
  const std::size_t rounds = sends_.size();
  out.reserve(rounds * 3 + 1);
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto t = static_cast<double>(r);
    Span send;
    send.name = "send";
    send.round = static_cast<int>(r);
    send.t0 = t;
    send.t1 = t + 0.25;
    send.tags.emplace_back("messages",
                           static_cast<std::int64_t>(sends_[r]));
    out.push_back(std::move(send));
    Span deliver;
    deliver.name = "deliver";
    deliver.round = static_cast<int>(r);
    deliver.t0 = t + 0.25;
    deliver.t1 = t + 0.5;
    deliver.parent = out.back().id();
    deliver.tags.emplace_back("messages",
                              static_cast<std::int64_t>(delivers_[r]));
    // Signed: negative means a duplicating network delivered extra copies.
    deliver.tags.emplace_back("dropped",
                              static_cast<std::int64_t>(sends_[r]) -
                                  static_cast<std::int64_t>(delivers_[r]));
    out.push_back(std::move(deliver));
    Span resolve;
    resolve.name = "resolve";
    resolve.round = static_cast<int>(r);
    resolve.t0 = t + 0.5;
    resolve.t1 = t + 1.0;
    resolve.parent = out.back().id();
    resolve.tags.emplace_back("nodes",
                              static_cast<std::int64_t>(resolves_[r]));
    out.push_back(std::move(resolve));
  }
  if (total_rounds_ >= 0) {
    Span decide;
    decide.name = "decide";
    decide.round = total_rounds_;
    decide.t0 = static_cast<double>(total_rounds_);
    decide.t1 = decide.t0;
    out.push_back(std::move(decide));
  }
  return out;
}

#endif  // DA_METRICS_DISABLED

}  // namespace da::obs
