#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace da::obs {

Json::Json(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    value_ = static_cast<double>(u);
  }
}

std::int64_t Json::as_int() const {
  if (holds<std::int64_t>()) return std::get<std::int64_t>(value_);
  return static_cast<std::int64_t>(std::get<double>(value_));
}

double Json::as_double() const {
  if (holds<double>()) return std::get<double>(value_);
  return static_cast<double>(std::get<std::int64_t>(value_));
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) value_ = Object{};
  Object& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  if (!is_array()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void json_escape(std::string_view text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_integer()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (is_number()) {
    append_double(std::get<double>(value_), out);
  } else if (is_string()) {
    json_escape(as_string(), out);
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ',';
      append_newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      json_escape(key, out);
      out += indent < 0 ? ":" : ": ";
      value.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------- parsing --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> value = parse_value();
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON value");
        value = std::nullopt;
      }
    }
    if (!value && error != nullptr) {
      *error = error_ + " at byte " + std::to_string(pos_);
    }
    return value;
  }

 private:
  void fail(const char* message) {
    if (error_.empty()) error_ = message;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return Json(nullptr);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 't') {
      if (literal("true")) return Json(true);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return Json(false);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == '"') return parse_string();
    if (c == '[') return parse_array();
    if (c == '{') return parse_object();
    return parse_number();
  }

  std::optional<Json> parse_string() {
    std::optional<std::string> s = parse_raw_string();
    if (!s) return std::nullopt;
    return Json(std::move(*s));
  }

  std::optional<std::string> parse_raw_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // Encode the code point as UTF-8 (no surrogate-pair handling:
          // the writer never emits escapes above U+001F).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<Json> parse_array() {
    (void)consume('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_object() {
    (void)consume('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_raw_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      obj.set(std::move(*key), std::move(*value));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace da::obs
