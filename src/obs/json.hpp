#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace da::obs {

/// A minimal, dependency-free JSON document: build values, serialize with
/// `dump()`, and parse standard JSON back with `parse()`. Objects preserve
/// insertion order so emitted files are stable and diffable. Numbers keep
/// an integer/double distinction so counters round-trip exactly.
///
/// This is deliberately small — just enough for the bench `--json`
/// reports, the JSONL trace export and the `trace_inspect` CLI. It is not
/// a general-purpose JSON library (no comments, no NaN/Infinity: non-finite
/// doubles serialize as null).
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : value_(i) {}        // NOLINT(google-explicit-constructor)
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Json(std::uint64_t u);                     // NOLINT(google-explicit-constructor)
  Json(double d) : value_(d) {}              // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_number() const {
    return holds<std::int64_t>() || holds<double>();
  }
  [[nodiscard]] bool is_integer() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<Array>(); }
  [[nodiscard]] bool is_object() const { return holds<Object>(); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const {
    return std::get<Array>(value_);
  }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }

  /// Object: appends (or replaces) a key. Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Object: pointer to the value at `key`, or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array: appends an element.
  void push_back(Json value);

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const;

  /// Array element access (unchecked beyond std::vector's).
  [[nodiscard]] const Json& at(std::size_t index) const {
    return as_array().at(index);
  }

  /// Serialize. `indent < 0`: compact one-line form; `indent >= 0`:
  /// pretty-printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage). On
  /// failure returns nullopt and, if `error` is non-null, a message with
  /// the byte offset.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  using Variant = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, Array, Object>;

  explicit Json(Variant v) : value_(std::move(v)) {}

  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }

  void dump_to(std::string& out, int indent, int depth) const;

  Variant value_;
};

/// Appends `text` JSON-escaped (quotes included) to `out`.
void json_escape(std::string_view text, std::string& out);

}  // namespace da::obs
