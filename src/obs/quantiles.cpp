#include "obs/quantiles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace da::obs {

std::size_t QuantileSketch::bucket_of(double value) {
  // NaN fails the comparison and joins zero/negatives in the underflow
  // bucket; +inf has biased exponent 0x7ff and clamps to overflow.
  if (!(value > 0.0)) return 0;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  if (exp < kMinExp) return 0;  // subnormals land here too (exp == -1023)
  if (exp >= kMaxExp) return kBuckets - 1;
  const auto sub = static_cast<std::size_t>(
      (bits >> (52 - kSubBits)) & static_cast<std::uint64_t>(kSubBuckets - 1));
  return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
}

double QuantileSketch::bucket_mid(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  if (bucket >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t k = bucket - 1;
  const int exp = kMinExp + static_cast<int>(k) / kSubBuckets;
  const auto sub = static_cast<double>(k % kSubBuckets);
  // Bucket k covers [2^exp * (1 + sub/32), 2^exp * (1 + (sub+1)/32)).
  return std::ldexp(1.0 + (sub + 0.5) / kSubBuckets, exp);
}

void QuantileSketch::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; answer them without bucket blur.
  if (clamped == 0.0) return min_;
  if (clamped == 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      clamped * static_cast<double>(count_ - 1));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative > target) {
      return std::clamp(bucket_mid(i), min_, max_);
    }
  }
  return max_;
}

std::string QuantileSketch::serialize() const {
  char line[96];
  std::string out;
  if (count_ == 0) return "qsketch/1 count=0\n";
  std::snprintf(line, sizeof line, "qsketch/1 count=%llu min=%016llx max=%016llx\n",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(min_)),
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(max_)));
  out += line;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof line, "b %zu %llu\n", i,
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

}  // namespace da::obs
