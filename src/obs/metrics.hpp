#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/quantiles.hpp"

namespace da::obs {

/// Protocol cost accounting for the whole repository: a process-wide
/// registry of named counters, gauges and histograms that the runtimes,
/// protocols, network models and the sweep engine write into, and that
/// benches export as JSON (see docs/OBSERVABILITY.md for the metric
/// name catalogue and the export schema).
///
/// Hot-path writes go to cheap *thread-local* sinks — a plain (non-atomic)
/// slot per metric per thread — and are folded into the shared registry
/// when a `MetricsScope` exits (counters merge with relaxed atomic adds,
/// histograms under one mutex). That makes instrumentation safe and
/// contention-free under the sweep engine's work-stealing pool: each
/// worker accumulates locally and pays one merge per protocol execution.
///
/// Compile-time kill switch: building with -DDA_METRICS_DISABLED (CMake:
/// -DDA_METRICS=OFF) turns every Counter/Histogram/Quantile/Timer
/// operation into an inline no-op so the cost of the instrumentation
/// itself can be measured (the registry stays linkable but stays empty).

/// Aggregate of one histogram: count/sum/min/max plus coarse log2 buckets
/// (bucket i counts samples in [2^(i-7), 2^(i-6)), clamped at the ends —
/// with millisecond samples that spans ~8 us to ~4 min).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 16;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Bucket index for a sample value.
  [[nodiscard]] static std::size_t bucket_of(double value);
};

/// Point-in-time copy of every registered metric. Quantile metrics carry
/// their full `QuantileSketch`, so a snapshot can answer any percentile
/// (the bench JSON export surfaces p50/p90/p99/p999).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, QuantileSketch> quantiles;
};

namespace detail {
void tls_counter_add(std::uint32_t id, std::uint64_t delta);
void tls_histogram_record(std::uint32_t id, double value);
void tls_quantile_record(std::uint32_t id, double value);
}  // namespace detail

/// The process-wide metric store. Use `MetricsRegistry::global()`;
/// metric handles (`Counter`, `Histogram`) intern their name here once at
/// construction and carry only a dense integer id afterwards.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Interns a metric name; returns its dense id (stable for the process
  /// lifetime, including across reset()).
  [[nodiscard]] std::uint32_t intern_counter(std::string_view name);
  [[nodiscard]] std::uint32_t intern_histogram(std::string_view name);
  [[nodiscard]] std::uint32_t intern_quantile(std::string_view name);

  /// Gauges are last-write-wins and written directly (no TLS staging):
  /// they are set rarely (per sweep / per bench), never per message.
  void set_gauge(std::string_view name, double value);

  /// Folds the calling thread's staged deltas into the shared store.
  /// Called automatically by ~MetricsScope.
  void flush_this_thread();

  /// Copies every metric (after flushing the calling thread). Other
  /// threads' unflushed deltas are not included — end their scopes first.
  [[nodiscard]] MetricsSnapshot snapshot();

  /// Single-counter read (after flushing the calling thread); 0 if the
  /// name was never interned. Convenience for tests and benches.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name);

  /// Zeroes every counter/histogram/gauge (names and ids survive). Only
  /// meaningful when no instrumented work is in flight on other threads.
  void reset();

 private:
  MetricsRegistry() = default;
};

/// A named monotonic counter. Construct once (function-local static at the
/// instrumentation site), then `add()` per event.
class Counter {
 public:
#ifndef DA_METRICS_DISABLED
  explicit Counter(std::string_view name)
      : id_(MetricsRegistry::global().intern_counter(name)) {}
  void add(std::uint64_t delta = 1) const { detail::tls_counter_add(id_, delta); }
#else
  explicit Counter(std::string_view) {}
  void add(std::uint64_t = 1) const {}
#endif

 private:
#ifndef DA_METRICS_DISABLED
  std::uint32_t id_;
#endif
};

/// A named quantile metric: double samples stream into a thread-local
/// `QuantileSketch` and fold into the shared one at `MetricsScope` exit.
/// Because sketch merging is exact (see obs/quantiles.hpp), the merged
/// sketch is identical for any worker count and flush order — unlike the
/// coarse `Histogram`, this is safe to pin byte-for-byte in tests.
class Quantile {
 public:
#ifndef DA_METRICS_DISABLED
  explicit Quantile(std::string_view name)
      : id_(MetricsRegistry::global().intern_quantile(name)) {}
  void record(double value) const { detail::tls_quantile_record(id_, value); }
#else
  explicit Quantile(std::string_view) {}
  void record(double) const {}
#endif

 private:
#ifndef DA_METRICS_DISABLED
  std::uint32_t id_;
#endif
};

/// A named histogram of double samples (timers record milliseconds).
class Histogram {
 public:
#ifndef DA_METRICS_DISABLED
  explicit Histogram(std::string_view name)
      : id_(MetricsRegistry::global().intern_histogram(name)) {}
  void record(double value) const { detail::tls_histogram_record(id_, value); }
#else
  explicit Histogram(std::string_view) {}
  void record(double) const {}
#endif

 private:
#ifndef DA_METRICS_DISABLED
  std::uint32_t id_;
#endif
};

/// Flushes the calling thread's staged metric deltas when it dies.
/// Instrumented regions (a protocol execution, a worker task, a node
/// thread body) hold one so their writes become visible at scope exit.
class MetricsScope {
 public:
  MetricsScope() = default;
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;
#ifndef DA_METRICS_DISABLED
  ~MetricsScope() { MetricsRegistry::global().flush_this_thread(); }
#else
  ~MetricsScope() = default;
#endif
};

/// Records the elapsed wall time (milliseconds) into a histogram at
/// destruction. The referenced histogram must outlive the timer.
class ScopedTimer {
 public:
#ifndef DA_METRICS_DISABLED
  explicit ScopedTimer(const Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    hist_->record(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
#else
  explicit ScopedTimer(const Histogram&) {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#ifndef DA_METRICS_DISABLED
  const Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace da::obs
