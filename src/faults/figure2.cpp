#include "faults/figure2.hpp"

#include "faults/adversaries.hpp"
#include "faults/scripted.hpp"
#include "util/contracts.hpp"

namespace da::faults::figure2 {

namespace {

Config lower_bound_config(int n) {
  DA_EXPECTS(n >= 4);
  // One node short of feasibility: min_nodes(1, n-2) = 2*1 + (n-2) + 1 = n+1.
  return Config{.n = n, .m = 1, .u = n - 2};
}

}  // namespace

Scenario scenario_a(int n) {
  Scenario s;
  s.name = "(a) A faulty, pretends it received alpha";
  s.spec.config = lower_bound_config(n);
  s.spec.sender = 0;
  s.spec.sender_value = kBeta;
  s.spec.faulty = {1};
  s.adversary = constant_liar(kAlpha);
  s.pivot_node = 2;
  return s;
}

Scenario scenario_b(int n) {
  Scenario s;
  s.name = "(b) sender faulty, alpha to A and beta to the rest";
  s.spec.config = lower_bound_config(n);
  s.spec.sender = 0;
  s.spec.sender_value = kBeta;  // nominal; the sender is faulty
  s.spec.faulty = {0};
  s.adversary = scripted({
      Rule{.from = 0, .to = 1, .action = Rule::Action::kReplace,
           .value = kAlpha},
      Rule{.from = 0, .action = Rule::Action::kReplace, .value = kBeta},
  });
  s.pivot_node = 2;
  return s;
}

Scenario scenario_c(int n) {
  Scenario s;
  s.name = "(c) B and C faulty, pretend they received beta";
  s.spec.config = lower_bound_config(n);
  s.spec.sender = 0;
  s.spec.sender_value = kAlpha;
  for (NodeId id = 2; id < n; ++id) s.spec.faulty.push_back(id);
  s.adversary = constant_liar(kBeta);
  s.pivot_node = 1;
  return s;
}

}  // namespace da::faults::figure2
