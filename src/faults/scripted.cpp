#include "faults/scripted.hpp"

#include <algorithm>

namespace da::faults {

bool Rule::matches(const sim::Message& msg) const {
  if (from != kNoNode && msg.from != from) return false;
  if (round >= 0 && msg.round != round) return false;
  if (to != kNoNode && msg.to != to) return false;
  if (!path_prefix.empty()) {
    if (msg.path.size() < path_prefix.size()) return false;
    if (!std::equal(path_prefix.begin(), path_prefix.end(),
                    msg.path.begin())) {
      return false;
    }
  }
  return true;
}

ScriptedAdversary::ScriptedAdversary(std::vector<Rule> rules)
    : rules_(std::move(rules)) {}

std::optional<sim::Message> ScriptedAdversary::corrupt(
    const sim::Message& msg) {
  for (const Rule& rule : rules_) {
    if (!rule.matches(msg)) continue;
    switch (rule.action) {
      case Rule::Action::kOmit:
        return std::nullopt;
      case Rule::Action::kReplace: {
        sim::Message out = msg;
        out.value = rule.value;
        return out;
      }
      case Rule::Action::kPass:
        return msg;
    }
  }
  return msg;
}

std::unique_ptr<sim::Adversary> scripted(std::vector<Rule> rules) {
  return std::make_unique<ScriptedAdversary>(std::move(rules));
}

}  // namespace da::faults
