#pragma once

#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "sim/adversary.hpp"

namespace da::faults::figure2 {

/// The two distinct non-default values of the Figure 2 argument
/// (V_d != alpha != beta != V_d).
inline const Value kAlpha = Value::of(101);
inline const Value kBeta = Value::of(202);

/// One of the three fault scenarios of the Theorem 2 lower-bound proof,
/// generalized from the 4-node Figure 2 to N = 2m+u nodes with m = 1
/// (groups: S = {0}, A = {1}, B = {2}, C = {3..n-1}; for n = 4 this is the
/// figure verbatim).
///
///  (a) A faulty; sender value beta; A pretends it received alpha.
///      f = 1 <= m, so D.1 demands everyone decide beta.
///  (b) S faulty; S sends alpha to A and beta to everyone else.
///      f = 1 <= m, so D.2 demands one identical decision. Node B's view is
///      identical to scenario (a), forcing that decision to be beta.
///  (c) B and C faulty; sender value alpha; B,C pretend they received beta.
///      f = u, so D.3 demands A decide alpha or V_d. Node A's view is
///      identical to scenario (b), where it had to decide beta —
///      contradiction: no protocol satisfies all three with N = 2m+u.
struct Scenario {
  std::string name;
  ScenarioSpec spec;
  std::unique_ptr<sim::Adversary> adversary;
  /// The receiver whose indistinguishable views drive the argument at this
  /// step (B for the a/b pair, A for the b/c pair).
  NodeId pivot_node = kNoNode;
};

/// n must be at least 4; the scenarios use config {n, m=1, u=n-2}, which is
/// exactly one node short of feasibility (min_nodes(1, n-2) = n+1).
[[nodiscard]] Scenario scenario_a(int n);
[[nodiscard]] Scenario scenario_b(int n);
[[nodiscard]] Scenario scenario_c(int n);

}  // namespace da::faults::figure2
