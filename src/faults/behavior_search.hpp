#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "faults/frontier.hpp"
#include "faults/search.hpp"
#include "sweep/sweep.hpp"

namespace da::faults {

/// Exhaustive *behaviour* search for depth-2 instances (BYZ(m,m) with
/// m <= 1): instead of a fixed adversary family, enumerate every
/// deterministic assignment of values to every message a faulty node
/// sends, over the canonical four-symbol alphabet
///
///     { sender's value, forged w1, forged w2, V_d }.
///
/// For threshold-vote protocols a message's effect depends only on the
/// equality pattern among received values; a violation of D.1/D.3 needs
/// the forged bloc concentrated on one non-sender value, and a violation
/// of D.2/D.4 needs at most two distinct fault-free classes — so two
/// distinct forged symbols cover every equality pattern an adversary can
/// force, and omission is equivalent to delivering V_d (an unset EIG slot
/// reads as V_d). Under that standard canonicalization the sweep is
/// adversary-complete, not merely family-complete. docs/SEARCH.md spells
/// the argument out in full, with its caveats.
///
/// Controlled slots per faulty node: its round-0 broadcast (if it is the
/// sender: n-1 destinations) and its round-1 relay of the sender slot
/// (n-2 destinations). The enumeration is exponential in the slot count:
/// keep n small (n = 4: <= 4^7; n = 5: <= 4^11 in the worst subset).
///
/// Returns the first violating scenario, or nullopt if *no behaviour at
/// all* breaks the conditions — the executable form of Theorem 1 for
/// these configurations.
[[nodiscard]] std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f = -1);

/// Knobs for the behaviour enumeration itself (the sweep-pool knobs live
/// in sweep::SweepOptions).
struct BehaviorSearchOptions {
  /// Largest fault count to try; -1 means the config's u.
  int max_f = -1;
  /// Fork each execution from a checkpointed post-round-0 state instead
  /// of replaying round 0 (see docs/SEARCH.md §4). Verdict-neutral.
  bool checkpointing = true;
  /// Walk only the canonical representative of each receiver-relabeling
  /// orbit, skipping non-minimal digit prefixes and weighting each
  /// representative by its orbit size (docs/SEARCH.md §5). The verdict,
  /// the first-hit ordinal, and — on clean sweeps — the orbit-weighted
  /// execution count (`SweepStats::weighted_executions`, which reconciles
  /// to `behavior_search_space`) are identical to the unreduced walk;
  /// only `executions` shrinks, to the representatives actually run.
  bool symmetry = true;
  /// Walk only one faulty subset per conjugacy class under sender-fixing
  /// node permutations, weighting its results by the class size
  /// (docs/SEARCH.md §6). Composes with `symmetry`: a representative's
  /// weight is its receiver-orbit size times its subset class size.
  /// Verdict, first-hit ordinal and weighted counts stay pinned to the
  /// unquotiented walk; the skipped segments never execute at all.
  bool subset_symmetry = true;
};

/// Parallel form: the same sweep, sharded deterministically over the
/// high-order base-4 digits of each subset's behaviour index and run on a
/// work-stealing pool (see src/sweep/). Behaviour digits are big-endian
/// (slot 0 = most-significant digit), so ordinals sharing leading digits
/// share their round-0 assignment. With `options.checkpointing` (the
/// default) the walk exploits exactly that: each shard forks every
/// execution from a checkpointed post-round-0 state instead of replaying
/// round 0, which is observationally identical
/// (tests/test_fork_engine.cpp) but ~halves the simulated rounds and
/// skips per-execution process construction. With `options.symmetry`
/// (the default) the walk visits one representative per
/// receiver-relabeling orbit. For every `sweep_options.jobs` value — and
/// for either flag — it returns the same first-violation-or-nullopt
/// verdict, the same first-hit ordinal, and the same canonical counts
/// (`stats->executions` for a fixed symmetry setting,
/// `stats->weighted_executions` across them); `stats` (optional)
/// additionally receives per-shard counters for scaling reports.
[[nodiscard]] std::optional<Violation> exhaustive_behavior_search(
    const Config& config, const BehaviorSearchOptions& options,
    const sweep::SweepOptions& sweep_options,
    sweep::SweepStats* stats = nullptr);

/// Back-compat form of the above: max_f + checkpointing as bare
/// parameters, symmetry at its default (on).
[[nodiscard]] std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f, const sweep::SweepOptions& options,
    sweep::SweepStats* stats = nullptr, bool checkpointing = true);

/// Number of protocol executions the unreduced search performs — the
/// full 4^k ordinal space (for reporting and reconciliation).
[[nodiscard]] std::uint64_t behavior_search_space(const Config& config,
                                                  int max_f = -1);

/// Number of canonical orbit representatives the symmetry-reduced walk
/// executes on a clean sweep: sum over segments of 4^fixed *
/// multichoose(4^rows, free receivers). Always <= behavior_search_space.
[[nodiscard]] std::uint64_t behavior_search_canonical_space(
    const Config& config, int max_f = -1);

/// Number of representatives the fully quotiented walk (receiver orbits
/// plus subset conjugacy, both defaults) executes on a clean sweep: the
/// canonical count summed over representative subsets only. Always <=
/// behavior_search_canonical_space.
[[nodiscard]] std::uint64_t behavior_search_quotient_space(
    const Config& config, int max_f = -1);

/// Re-executes the single behaviour at a global ordinal (scratch path, no
/// sweep) and reports its violation, if any. This is how a resumed
/// frontier rematerializes the Violation for a hit ordinal recorded by an
/// earlier process, and how tests map orbit members to their verdicts.
[[nodiscard]] std::optional<Violation> behavior_at(const Config& config,
                                                   int max_f,
                                                   std::uint64_t ordinal);

/// Builds a fresh (untouched) frontier for the behaviour search: one
/// record per sweep shard, cursors at their shard heads. `seed` is
/// stored in the frontier so every resuming process derives identical
/// per-shard RNG streams. With `subset_symmetry` (the default) the
/// frontier is quotiented — it carries one class record per conjugacy
/// class and serializes as `da-frontier v2`; pass false for the full v1
/// plan. The quotient choice is baked into the frontier (derived from
/// its class records on resume), so v1 files keep resuming unquotiented.
[[nodiscard]] Frontier init_behavior_frontier(const Config& config,
                                              int max_f = -1,
                                              std::uint64_t seed = 1,
                                              bool subset_symmetry = true);

struct FrontierRunOptions {
  int jobs = 1;
  /// Suspend after this many shard completions in *this* run (the
  /// kill-and-resume unit); -1 runs to settlement. Suspension is
  /// cooperative: in-flight shards park their cursors in the frontier.
  int max_shards = -1;
  bool checkpointing = true;
  /// Receiver-relabeling reduction for this run. A run-time knob because
  /// it changes which ordinals execute, never the shard plan. The subset
  /// quotient is *not* a run option: it reshapes the plan, so it is baked
  /// into the frontier at init time and derived from its class records.
  bool symmetry = true;
  /// Invoked (serialized, from worker threads) with the updated frontier
  /// each time a shard settles — hook the atomic save_frontier here for
  /// crash-safe incremental checkpoints.
  std::function<void(const Frontier&)> checkpoint;
};

struct FrontierRun {
  /// The violation at the frontier's best hit ordinal (rematerialized by
  /// re-execution when the hit was found by an earlier run). Only final
  /// once `settled`.
  std::optional<Violation> violation;
  sweep::SweepStats stats;
  /// Verdict is final: the frontier covers the space and no unscanned
  /// ordinal precedes the best hit. The frontier has been normalized
  /// (schedule-dependent post-hit progress discarded), so its serialized
  /// form is byte-identical for any jobs value / interruption pattern.
  bool settled = false;
  /// Non-empty when the frontier does not match the search's shard plan.
  std::string error;
};

/// Runs (or resumes) the behaviour search described by `frontier`,
/// updating it in place. The frontier may be a split part (a subset of
/// the plan's shards): foreign shards are left untouched and the verdict
/// settles only on a space-covering frontier.
[[nodiscard]] FrontierRun run_behavior_frontier(
    Frontier& frontier, const FrontierRunOptions& options = {});

}  // namespace da::faults
