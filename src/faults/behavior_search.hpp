#pragma once

#include <cstdint>
#include <optional>

#include "faults/search.hpp"
#include "sweep/sweep.hpp"

namespace da::faults {

/// Exhaustive *behaviour* search for depth-2 instances (BYZ(m,m) with
/// m <= 1): instead of a fixed adversary family, enumerate every
/// deterministic assignment of values to every message a faulty node
/// sends, over the canonical four-symbol alphabet
///
///     { sender's value, forged w1, forged w2, V_d }.
///
/// For threshold-vote protocols a message's effect depends only on the
/// equality pattern among received values; a violation of D.1/D.3 needs
/// the forged bloc concentrated on one non-sender value, and a violation
/// of D.2/D.4 needs at most two distinct fault-free classes — so two
/// distinct forged symbols cover every equality pattern an adversary can
/// force, and omission is equivalent to delivering V_d (an unset EIG slot
/// reads as V_d). Under that standard canonicalization the sweep is
/// adversary-complete, not merely family-complete. docs/SEARCH.md spells
/// the argument out in full, with its caveats.
///
/// Controlled slots per faulty node: its round-0 broadcast (if it is the
/// sender: n-1 destinations) and its round-1 relay of the sender slot
/// (n-2 destinations). The enumeration is exponential in the slot count:
/// keep n small (n = 4: <= 4^7; n = 5: <= 4^11 in the worst subset).
///
/// Returns the first violating scenario, or nullopt if *no behaviour at
/// all* breaks the conditions — the executable form of Theorem 1 for
/// these configurations.
[[nodiscard]] std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f = -1);

/// Parallel form: the same sweep, sharded deterministically over the
/// high-order base-4 digits of each subset's behaviour index and run on a
/// work-stealing pool (see src/sweep/). Behaviour digits are big-endian
/// (slot 0 = most-significant digit), so ordinals sharing leading digits
/// share their round-0 assignment. With `checkpointing` (the default) the
/// walk exploits exactly that: each shard forks every execution from a
/// checkpointed post-round-0 state instead of replaying round 0, which is
/// observationally identical (tests/test_fork_engine.cpp) but ~halves the
/// simulated rounds and skips per-execution process construction. For
/// every `options.jobs` value — and for either `checkpointing` value — it
/// returns the same first-violation-or-nullopt verdict and the same
/// canonical execution count (`stats->executions`); `stats` (optional)
/// additionally receives per-shard counters for scaling reports.
[[nodiscard]] std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f, const sweep::SweepOptions& options,
    sweep::SweepStats* stats = nullptr, bool checkpointing = true);

/// Number of protocol executions the search performs (for reporting).
[[nodiscard]] std::uint64_t behavior_search_space(const Config& config,
                                                  int max_f = -1);

}  // namespace da::faults
