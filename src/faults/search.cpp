#include "faults/search.hpp"

#include <algorithm>

#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "faults/canon.hpp"
#include "obs/metrics.hpp"
#include "sim/round_engine.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace da::faults {

std::vector<NamedAdversaryFactory> standard_family(std::uint64_t seed) {
  std::vector<NamedAdversaryFactory> family;

  family.push_back({"silent", [](const ScenarioSpec&) { return silent(); }});
  family.push_back(
      {"default_spammer",
       [](const ScenarioSpec&) { return default_spammer(); }});
  family.push_back({"constant_liar(v+1)", [](const ScenarioSpec& s) {
                      return constant_liar(Value::of(s.sender_value.raw() + 1));
                    }});
  family.push_back({"constant_liar(v)", [](const ScenarioSpec& s) {
                      return constant_liar(s.sender_value);
                    }});
  family.push_back({"equivocator(v,v+1)", [](const ScenarioSpec& s) {
                      return equivocator(s.sender_value,
                                         Value::of(s.sender_value.raw() + 1));
                    }});
  family.push_back({"equivocator(v+1,v+2)", [](const ScenarioSpec& s) {
                      return equivocator(Value::of(s.sender_value.raw() + 1),
                                         Value::of(s.sender_value.raw() + 2));
                    }});
  family.push_back({"equivocator(v+1,Vd)", [](const ScenarioSpec& s) {
                      return equivocator(Value::of(s.sender_value.raw() + 1),
                                         Value::def());
                    }});
  family.push_back({"pivot_equivocator(mid)", [](const ScenarioSpec& s) {
                      return pivot_equivocator(
                          s.sender_value, Value::of(s.sender_value.raw() + 1),
                          s.config.n / 2);
                    }});
  family.push_back({"targeted_split(low half)", [](const ScenarioSpec& s) {
                      std::vector<NodeId> target;
                      for (NodeId id = 0; id < s.config.n / 2; ++id) {
                        target.push_back(id);
                      }
                      return targeted_split(std::move(target),
                                            Value::of(s.sender_value.raw() + 1));
                    }});
  family.push_back(
      {"crash_after(0)", [](const ScenarioSpec&) { return crash_after(0); }});
  family.push_back(
      {"crash_after(1)", [](const ScenarioSpec&) { return crash_after(1); }});
  for (int k = 0; k < 3; ++k) {
    family.push_back(
        {"random_noise#" + std::to_string(k),
         [seed, k](const ScenarioSpec& s) {
           return random_noise(mix64(seed, static_cast<std::uint64_t>(k)),
                               s.sender_value.raw() - 2,
                               s.sender_value.raw() + 2, 0.25);
         }});
  }
  return family;
}

std::uint64_t search_space_size(const Config& config,
                                const SearchOptions& options) {
  const int max_f = options.max_f < 0 ? config.u : options.max_f;
  const std::uint64_t senders =
      options.all_senders ? static_cast<std::uint64_t>(config.n) : 1;
  const std::uint64_t advs = standard_family(options.seed).size();
  std::uint64_t subsets = 0;
  for (int f = 0; f <= max_f; ++f) {
    // canon's overflow-checked binomial: a runaway (n, max_f) request
    // trips a contract instead of silently wrapping the space size.
    subsets += binomial(static_cast<std::uint64_t>(config.n),
                        static_cast<std::uint64_t>(f)) +
               static_cast<std::uint64_t>(options.random_trials);
  }
  return senders * advs * subsets;
}

namespace {

/// One scenario ordinal of the flattened search space. Exhaustive entries
/// carry their spec; random probes carry (sender, f) and materialize the
/// spec from an ordinal-derived RNG stream inside the visitor, so the
/// probed scenarios are a pure function of (seed, ordinal) — identical
/// for every thread count.
struct ScenarioEntry {
  ScenarioSpec spec;
  bool random = false;
  NodeId sender = 0;
  int f = 0;
};

/// Scenario ordinals are coarse units (each runs a whole adversary
/// family), so shards are small to give the work-stealing pool enough
/// pieces to balance. Constant, never derived from the job count.
constexpr std::uint64_t kScenariosPerShard = 16;

// Checkpoint-engine accounting (shared by name with behavior_search.cpp:
// the registry interns counters, so both files write the same metrics).
const obs::Counter& checkpoints_counter() {
  static const obs::Counter c("search.checkpoints");
  return c;
}
const obs::Counter& forks_counter() {
  static const obs::Counter c("search.forks");
  return c;
}
const obs::Counter& rounds_replayed_counter() {
  static const obs::Counter c("search.rounds_replayed");
  return c;
}
const obs::Counter& rounds_skipped_counter() {
  static const obs::Counter c("search.rounds_skipped");
  return c;
}

}  // namespace

std::optional<Violation> search_violation(
    const Config& config, const SearchOptions& options,
    const sweep::SweepOptions& sweep_options, sweep::SweepStats* stats) {
  DA_EXPECTS(config.valid());
  const int max_f = options.max_f < 0 ? config.u : options.max_f;
  const auto family = standard_family(options.seed);
  const DegradableAgreement protocol(config);

  // Flatten the serial scan order: sender-major, fault count ascending,
  // exhaustive subsets (lexicographic) before the random probes.
  std::vector<NodeId> senders{0};
  if (options.all_senders) {
    senders.clear();
    for (NodeId s = 0; s < config.n; ++s) senders.push_back(s);
  }
  std::vector<ScenarioEntry> entries;
  for (NodeId sender : senders) {
    for (int f = 0; f <= max_f; ++f) {
      for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
        ScenarioEntry entry;
        entry.spec.config = config;
        entry.spec.sender = sender;
        entry.spec.sender_value = Value::of(7);
        entry.spec.faulty = faulty;
        entries.push_back(std::move(entry));
      });
      for (int t = 0; t < options.random_trials; ++t) {
        ScenarioEntry entry;
        entry.random = true;
        entry.sender = sender;
        entry.f = f;
        entries.push_back(std::move(entry));
      }
    }
  }

  const sweep::ShardPlan plan =
      sweep::ShardPlan::even(entries.size(), kScenariosPerShard);
  std::vector<std::optional<Violation>> candidates(plan.shard_count());
  const auto visitor = [&](std::uint64_t ordinal, std::size_t shard,
                           Rng&) -> sweep::Visit {
    const ScenarioEntry& entry = entries[ordinal];
    ScenarioSpec spec = entry.spec;
    if (entry.random) {
      Rng trial_rng(mix64(mix64(options.seed, 0xda), ordinal));
      spec.config = config;
      spec.sender = entry.sender;
      spec.sender_value = Value::of(trial_rng.range(1, 100));
      const std::vector<int> subset = trial_rng.subset(config.n, entry.f);
      spec.faulty.assign(subset.begin(), subset.end());
    }
    sweep::Visit visit;
    visit.executions = 0;
    if (!options.checkpointing || spec.f() == 0) {
      // Scratch path: one full execution per adversary. With no faulty
      // nodes every adversary is a no-op, so only "silent" runs.
      for (const auto& factory : family) {
        if (spec.f() == 0 && factory.name != "silent") continue;
        auto adversary = factory.make(spec);
        ++visit.executions;
        const ConditionReport report =
            protocol.run_and_check(spec, adversary.get());
        if (!report.satisfied) {
          candidates[shard] = Violation{spec, factory.name, report};
          visit.hit = true;
          break;
        }
      }
      visit.weight = visit.executions;  // no orbit reduction here
      return visit;
    }

    // Checkpointed path: the adversary only acts at dispatch time, and no
    // family adversary fabricates, so every execution of this (sender,
    // subset) scenario shares an adversary-independent prefix — process
    // construction plus, when the sender is honest, all of round 0 (the
    // only round-0 traffic is the honest sender's broadcast). Snapshot
    // that prefix once and fork the rest per family member, which is
    // byte-equivalent to the scratch path (docs/SEARCH.md, "Checkpoint
    // engine"; tests/test_fork_engine.cpp holds it to that).
    static const obs::Counter byz_executions("protocol.byz.executions");
    static const obs::Counter byz_messages("protocol.byz.messages_sent");
    spec.validate();
    sim::HonestAdversary honest;
    sim::RunOptions run_options;
    run_options.faulty = spec.faulty;
    run_options.adversary = &honest;
    sim::RoundEngine engine(
        core::make_byz_processes(config, spec.sender, spec.sender_value),
        run_options);
    engine.begin();
    int prefix_rounds = 0;
    if (!spec.sender_faulty()) {
      engine.dispatch_pending();
      engine.process_round();
      prefix_rounds = 1;
    }
    const sim::RoundEngine::Snapshot prefix = engine.snapshot();
    checkpoints_counter().add();
    rounds_replayed_counter().add(static_cast<std::uint64_t>(prefix_rounds));
    const int suffix_rounds = engine.total_rounds() - prefix_rounds;
    sim::RunResult result;
    bool first = true;
    for (const auto& factory : family) {
      auto adversary = factory.make(spec);
      engine.set_adversary(adversary.get());
      if (!first) {
        engine.restore(prefix);
        forks_counter().add();
        rounds_skipped_counter().add(
            static_cast<std::uint64_t>(prefix_rounds));
      }
      first = false;
      while (!engine.done()) {
        engine.dispatch_pending();
        engine.process_round();
      }
      rounds_replayed_counter().add(static_cast<std::uint64_t>(suffix_rounds));
      ++visit.executions;
      byz_executions.add();
      engine.finish_into(result);
      byz_messages.add(result.messages_sent);
      const ConditionReport report = check_conditions(spec, result.decisions);
      if (!report.satisfied) {
        candidates[shard] = Violation{spec, factory.name, report};
        visit.hit = true;
        break;
      }
    }
    visit.weight = visit.executions;  // no orbit reduction here
    return visit;
  };

  const sweep::SweepResult result =
      sweep::run_sweep(plan, sweep_options, visitor);
  if (stats != nullptr) *stats = result.stats;
  if (!result.first_hit_shard.has_value()) return std::nullopt;
  return candidates[*result.first_hit_shard];
}

std::optional<Violation> search_violation(const Config& config,
                                          const SearchOptions& options) {
  return search_violation(config, options, sweep::SweepOptions{});
}

}  // namespace da::faults
