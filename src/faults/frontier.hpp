#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "sweep/sweep.hpp"

namespace da::faults {

/// Serialized search frontier: the on-disk form of a suspended (or
/// finished) exhaustive behaviour sweep. A frontier carries the search's
/// identity (config, fault limit, seed, total ordinal space) plus one
/// line per shard with its scan cursor and cumulative counters, so a
/// killed sweep can resume in a later process — or be split across
/// several processes and merged back — and still produce an artifact
/// byte-identical to an uninterrupted run (docs/SEARCH.md §5).
///
/// Text format, version 1 (one record per line, space-separated):
///
///     da-frontier v1
///     config <n> <m> <u> <max_f> <seed> <space>
///     shard <begin> <end> <cursor> <executions> <weighted> <hit|->
///     ...
///     end <shard_count>
///
/// Version 2 adds the subset-conjugacy quotient (docs/SEARCH.md §6): one
/// `class` record per representative segment, between the config line and
/// the shard lines —
///
///     da-frontier v2
///     config <n> <m> <u> <max_f> <seed> <space>
///     class <base> <size> <weight>
///     ...
///     shard <begin> <end> <cursor> <executions> <weighted> <hit|->
///     ...
///     end <shard_count>
///
/// `space` stays the *full* unreduced ordinal space in both versions;
/// class records pin which representative ranges the shards actually
/// tile and how many conjugate segments each stands for, and the parser
/// rejects any file whose class weights do not reconcile exactly to the
/// space (sum of size*weight == space). A v1 file (no classes) describes
/// an unquotiented search, and both versions remain parseable.
///
/// Shards are sorted by `begin`, must not overlap, and duplicates are
/// rejected; the `end` trailer guards against truncation. A file may
/// hold a *subset* of the plan's shards (the unit of distribution for
/// split/merge) — only a frontier whose shards cover the whole space
/// (v2: every class's representative range) can settle a verdict.
struct FrontierShard {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t cursor = 0;      ///< next unvisited ordinal (== end: settled)
  std::uint64_t executions = 0;  ///< cumulative representatives executed
  std::uint64_t weighted = 0;    ///< cumulative orbit-weighted executions
  std::uint64_t hit = sweep::kNoHit;  ///< shard's first violation ordinal

  [[nodiscard]] bool settled() const { return cursor == end; }
};

/// One subset-conjugacy class (v2): the representative segment's base
/// ordinal and size in the unreduced space, plus how many conjugate
/// segments it stands for. Weighted counters multiply by `weight`, so a
/// clean quotiented sweep still reconciles to the full space.
struct FrontierClass {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  std::uint64_t weight = 0;

  [[nodiscard]] std::uint64_t end() const { return base + size; }
};

struct Frontier {
  Config config{};
  int max_f = -1;
  std::uint64_t seed = 1;
  std::uint64_t space = 0;  ///< full (unreduced) ordinal space, 4^k summed
  /// Subset-conjugacy classes, sorted by base, disjoint. Empty means the
  /// search is unquotiented (and the file serializes as v1).
  std::vector<FrontierClass> classes;
  std::vector<FrontierShard> shards;  ///< sorted by begin, non-overlapping

  /// Smallest recorded hit ordinal across shards, or sweep::kNoHit.
  [[nodiscard]] std::uint64_t best_hit() const;

  /// True when the shards tile the scanned space exactly — [0, space)
  /// for an unquotiented frontier, the union of class representative
  /// ranges for a quotiented one — i.e. this frontier is the whole plan,
  /// not a split part.
  [[nodiscard]] bool covers_space() const;

  /// True when the verdict is final: the shards cover the space and every
  /// shard either scanned to its end or starts at/after the best hit
  /// (with no hit, that means every shard is complete).
  [[nodiscard]] bool settled() const;

  /// Discards schedule-dependent progress: once a best hit exists, every
  /// shard beginning after it is reset to untouched (those scans were
  /// speculative and depend on worker timing). Shards at or before the
  /// hit are fully deterministic, so a normalized settled frontier is
  /// byte-identical for any --jobs value and any interruption pattern.
  void normalize();
};

/// Renders the frontier in its text format — v2 when it carries classes,
/// v1 otherwise (shards re-sorted by begin).
[[nodiscard]] std::string serialize_frontier(const Frontier& frontier);

struct FrontierParse {
  std::optional<Frontier> frontier;
  std::string error;  ///< non-empty exactly when frontier is empty

  [[nodiscard]] bool ok() const { return frontier.has_value(); }
};

/// Strict parser for the v1/v2 formats: rejects unknown versions,
/// truncated files (missing or miscounted `end` trailer), malformed
/// records, duplicate or overlapping shards or classes, out-of-range
/// cursors/hits, v2 files whose class weights do not reconcile to the
/// space, shards outside every class range, and class records in a v1
/// file.
[[nodiscard]] FrontierParse parse_frontier(std::string_view text);

/// Splits a frontier into `parts` frontiers with the same header, dealing
/// shards round-robin (part i takes shards i, i+parts, ...). Parts with
/// no shards are still emitted, so merge(split(f)) == f.
[[nodiscard]] std::vector<Frontier> split_frontier(const Frontier& frontier,
                                                   std::size_t parts);

/// Merges split parts back together. All parts must agree on the header;
/// shard sets must be disjoint (a duplicate begin is an error, mirroring
/// the parser).
[[nodiscard]] FrontierParse merge_frontiers(
    const std::vector<Frontier>& parts);

/// Atomically writes the frontier to `path` (tmp file + rename), so a
/// kill mid-checkpoint never leaves a torn file. Returns false on I/O
/// failure.
bool save_frontier(const Frontier& frontier, const std::string& path);

/// Reads and parses a frontier file.
[[nodiscard]] FrontierParse load_frontier(const std::string& path);

}  // namespace da::faults
