#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/agreement.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "sim/adversary.hpp"
#include "sweep/sweep.hpp"
#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace da::faults {

/// A named adversary constructor, parameterized by the scenario it will
/// attack (so lies can be chosen relative to the sender's value and the
/// population size).
struct NamedAdversaryFactory {
  std::string name;
  std::function<std::unique_ptr<sim::Adversary>(const ScenarioSpec&)> make;
};

/// The standard attack family used by the property tests and the bound
/// experiments: silence, default-spamming, consistent lying, two-faced
/// equivocation (parity, pivot and targeted variants), crashes, and seeded
/// Byzantine noise.
[[nodiscard]] std::vector<NamedAdversaryFactory> standard_family(
    std::uint64_t seed);

/// A found counterexample: a scenario plus the adversary under which the
/// protocol violated the governing condition.
struct Violation {
  ScenarioSpec spec;
  std::string adversary;
  ConditionReport report;
};

struct SearchOptions {
  /// Largest fault count to try; -1 means the config's u.
  int max_f = -1;
  /// Try every sender (true) or only sender 0 (false; the protocol is
  /// node-symmetric, but some adversaries key on node parity).
  bool all_senders = false;
  std::uint64_t seed = 1;
  /// Extra random (subset, adversary) probes per fault count, on top of
  /// the exhaustive subset sweep.
  int random_trials = 0;
  /// Share one checkpointed execution prefix per (sender, subset) across
  /// the whole adversary family instead of executing each adversary from
  /// scratch (see docs/SEARCH.md, "Checkpoint engine"). The verdict and
  /// the canonical execution count are identical either way.
  bool checkpointing = true;
};

/// Runs BYZ(m,m) under every (sender, faulty subset, adversary) combination
/// and checks D.1-D.4. Returns the first violation found, or nullopt if the
/// protocol survives everything — which is the expected outcome exactly
/// when config.feasible().
[[nodiscard]] std::optional<Violation> search_violation(
    const Config& config, const SearchOptions& options = {});

/// Parallel form: the same search run through the scenario-sweep engine
/// (src/sweep/) — scenarios are sharded deterministically in serial scan
/// order (sender, then fault count, then subset lexicographic, then the
/// random probes) and scanned by a work-stealing pool with early-exit
/// cancellation. The verdict and the canonical execution count in
/// `stats->executions` are identical for every `sweep_options.jobs`
/// value. Random probes derive their spec from mix64(seed, ordinal), so
/// they too are thread-count independent.
[[nodiscard]] std::optional<Violation> search_violation(
    const Config& config, const SearchOptions& options,
    const sweep::SweepOptions& sweep_options,
    sweep::SweepStats* stats = nullptr);

/// Total number of protocol executions `search_violation` would perform
/// (for reporting).
[[nodiscard]] std::uint64_t search_space_size(const Config& config,
                                              const SearchOptions& options);

/// Enumerates all k-subsets of {0..n-1} in lexicographic order; invokes
/// `fn(const std::vector<NodeId>&)` with each (sorted ascending). A
/// header-only template so the enumeration hot loops inline the callback
/// instead of paying a `std::function` dispatch per subset.
template <typename SubsetFn>
void for_each_subset(int n, int k, SubsetFn&& fn) {
  DA_EXPECTS(0 <= k && k <= n);
  std::vector<NodeId> subset(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) subset[static_cast<std::size_t>(i)] = i;
  const std::vector<NodeId>& view = subset;
  for (;;) {
    fn(view);
    // Next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) return;
    ++subset[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      subset[static_cast<std::size_t>(j)] =
          subset[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace da::faults
