#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/agreement.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "sim/adversary.hpp"
#include "sweep/sweep.hpp"

namespace da::faults {

/// A named adversary constructor, parameterized by the scenario it will
/// attack (so lies can be chosen relative to the sender's value and the
/// population size).
struct NamedAdversaryFactory {
  std::string name;
  std::function<std::unique_ptr<sim::Adversary>(const ScenarioSpec&)> make;
};

/// The standard attack family used by the property tests and the bound
/// experiments: silence, default-spamming, consistent lying, two-faced
/// equivocation (parity, pivot and targeted variants), crashes, and seeded
/// Byzantine noise.
[[nodiscard]] std::vector<NamedAdversaryFactory> standard_family(
    std::uint64_t seed);

/// A found counterexample: a scenario plus the adversary under which the
/// protocol violated the governing condition.
struct Violation {
  ScenarioSpec spec;
  std::string adversary;
  ConditionReport report;
};

struct SearchOptions {
  /// Largest fault count to try; -1 means the config's u.
  int max_f = -1;
  /// Try every sender (true) or only sender 0 (false; the protocol is
  /// node-symmetric, but some adversaries key on node parity).
  bool all_senders = false;
  std::uint64_t seed = 1;
  /// Extra random (subset, adversary) probes per fault count, on top of
  /// the exhaustive subset sweep.
  int random_trials = 0;
};

/// Runs BYZ(m,m) under every (sender, faulty subset, adversary) combination
/// and checks D.1-D.4. Returns the first violation found, or nullopt if the
/// protocol survives everything — which is the expected outcome exactly
/// when config.feasible().
[[nodiscard]] std::optional<Violation> search_violation(
    const Config& config, const SearchOptions& options = {});

/// Parallel form: the same search run through the scenario-sweep engine
/// (src/sweep/) — scenarios are sharded deterministically in serial scan
/// order (sender, then fault count, then subset lexicographic, then the
/// random probes) and scanned by a work-stealing pool with early-exit
/// cancellation. The verdict and the canonical execution count in
/// `stats->executions` are identical for every `sweep_options.jobs`
/// value. Random probes derive their spec from mix64(seed, ordinal), so
/// they too are thread-count independent.
[[nodiscard]] std::optional<Violation> search_violation(
    const Config& config, const SearchOptions& options,
    const sweep::SweepOptions& sweep_options,
    sweep::SweepStats* stats = nullptr);

/// Total number of protocol executions `search_violation` would perform
/// (for reporting).
[[nodiscard]] std::uint64_t search_space_size(const Config& config,
                                              const SearchOptions& options);

/// Enumerates all k-subsets of {0..n-1}; invokes fn with each (sorted).
void for_each_subset(int n, int k,
                     const std::function<void(const std::vector<NodeId>&)>& fn);

}  // namespace da::faults
