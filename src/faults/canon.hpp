#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "util/ids.hpp"

namespace da::faults {

/// Receiver-relabeling symmetry of one behaviour segment.
///
/// The behaviour enumeration assigns a base-4 digit to every controlled
/// slot (from, to). Relabeling the *free* receivers — nodes that are
/// neither the sender nor faulty — maps each execution to an isomorphic
/// one: every free receiver runs the same deterministic code on the same
/// multiset of received values, only its name changes, so verdicts,
/// decision multisets and condition reports are invariant. Two behaviour
/// vectors in the same orbit of this action therefore produce the same
/// verdict, and it suffices to execute one representative per orbit,
/// weighting it by the orbit size so aggregate counts still reconcile
/// against the full 4^k space (docs/SEARCH.md §5).
///
/// Structure: each faulty node contributes one *row* of slots, and every
/// row contains exactly one slot per free receiver (free receivers are
/// never excluded from a faulty node's destination list) plus slots to
/// other faulty nodes, which the relabeling fixes. The action permutes
/// the free-receiver *columns* — the per-receiver digit vectors read
/// top-down through the rows — identically across all rows.
struct SlotSymmetry {
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  /// Behaviour counters use 2 bits per slot and segments cap slots at 12,
  /// so fixed-size scratch arrays of this many entries always suffice.
  static constexpr std::size_t kMaxSlots = 12;

  std::size_t slots = 0;       ///< total controlled-slot count
  std::size_t rows = 0;        ///< faulty rows, in slot (= digit) order
  std::size_t free_count = 0;  ///< free receivers r (columns being permuted)
  /// pos[row * free_count + rank] = slot index of the slot row sends to
  /// the rank-th free receiver (ranks ascend with receiver id).
  std::vector<std::size_t> pos;

  [[nodiscard]] std::size_t at(std::size_t row, std::size_t rank) const {
    return pos[row * free_count + rank];
  }
  /// True when the group is trivial (fewer than two free columns): every
  /// behaviour is its own canonical representative.
  [[nodiscard]] bool trivial() const { return free_count < 2 || rows == 0; }
};

/// Builds the symmetry descriptor for a segment's slot list (the list
/// produced by the behaviour search for `spec`, rows grouped by faulty
/// `from` and destinations ascending within each row).
[[nodiscard]] SlotSymmetry make_slot_symmetry(
    const ScenarioSpec& spec,
    const std::vector<std::pair<NodeId, NodeId>>& slots);

/// Big-endian base-4 digit of `counter` at slot index `i` (slot 0 is the
/// most-significant digit — the convention of the behaviour search).
[[nodiscard]] inline std::uint64_t behavior_digit(std::uint64_t counter,
                                                  std::size_t slots,
                                                  std::size_t i) {
  return (counter >> (2 * (slots - 1 - i))) & 3;
}

/// True iff `counter` is the canonical (minimum) member of its orbit:
/// the free-receiver columns, compared lexicographically top-down, are in
/// non-decreasing order. Sorting columns minimizes the row-major digit
/// word by an adjacent-exchange argument, so this *is* the orbit minimum
/// under the big-endian ordinal order.
[[nodiscard]] bool is_canonical(const SlotSymmetry& sym, std::uint64_t counter);

/// The canonical representative of `counter`'s orbit (free columns sorted
/// ascending; digits addressed to faulty nodes untouched). Idempotent.
[[nodiscard]] std::uint64_t canonical_form(const SlotSymmetry& sym,
                                           std::uint64_t counter);

/// Orbit size of `counter`'s orbit: r! / prod(multiplicities!) over groups
/// of equal free columns. Invariant across the orbit.
[[nodiscard]] std::uint64_t orbit_size(const SlotSymmetry& sym,
                                       std::uint64_t counter);

/// Smallest canonical counter >= `counter` (identity on canonical input).
/// Never fails: the all-3s counter is canonical, so a successor always
/// exists within the segment. Implemented as an iterated prefix jump: the
/// earliest digit position that completes a "column j > column j+1"
/// certificate is raised to its left neighbour's digit and the tail is
/// zeroed — every value skipped over shares the certificate and is
/// therefore non-canonical.
[[nodiscard]] std::uint64_t next_canonical(const SlotSymmetry& sym,
                                           std::uint64_t counter);

/// Number of canonical representatives in the segment: 4^fixed *
/// multichoose(4^rows, r) — fixed digits are free, and each orbit picks a
/// sorted multiset of r columns from the 4^rows possible column vectors.
/// Orbit sizes over all representatives sum back to 4^slots.
[[nodiscard]] std::uint64_t canonical_count(const SlotSymmetry& sym);

/// Applies a free-receiver relabeling: the column at rank j moves to rank
/// `perm[j]` (perm must be a permutation of 0..free_count-1). Test helper
/// for orbit-invariance properties; returns a counter in the same orbit.
[[nodiscard]] std::uint64_t permute_free_receivers(
    const SlotSymmetry& sym, std::uint64_t counter,
    const std::vector<std::size_t>& perm);

// ---------------------------------------------------------------------
// Checked orbit arithmetic. Orbit sizes, canonical counts and conjugacy
// class sizes multiply factorials, powers of four and binomials in
// uint64; all of it funnels through these helpers so a parameter regime
// that would silently wrap instead trips a DA_EXPECTS contract.

/// a * b, guarded: DA_EXPECTS the product fits in uint64.
[[nodiscard]] std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b);

/// k!, guarded (k <= 20 is the largest representable).
[[nodiscard]] std::uint64_t checked_factorial(std::uint64_t k);

/// C(n, k), guarded; 0 when k > n. Built multiplicatively with exact
/// intermediate division, so the guard fires only when an intermediate
/// binomial itself exceeds uint64.
[[nodiscard]] std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/// Multisets of size k over n symbols: C(n + k - 1, k), guarded.
[[nodiscard]] std::uint64_t multichoose(std::uint64_t n, std::uint64_t k);

// ---------------------------------------------------------------------
// Subset conjugacy (docs/SEARCH.md §6). Node permutations that fix the
// sender act on faulty subsets by relabeling; two subsets in the same
// orbit of that action ("conjugate" subsets) induce behaviour segments
// that are isomorphic slot-for-slot, so the search need only walk one
// representative subset per class and weight it by the class size. The
// action is the full symmetric group on the n-1 non-sender nodes, so a
// class is determined by (f, sender in subset?): its size is C(n-1, f-1)
// when the sender is faulty and C(n-1, f) when it is honest.

/// The canonical representative of `faulty`'s conjugacy class: the
/// lexicographically-first subset with the same size and the same
/// sender-membership (sender plus the smallest non-sender ids, or just
/// the smallest non-sender ids). Sorted ascending; idempotent. Because
/// segments are enumerated in lexicographic subset order, this is also
/// the class member with the smallest segment base ordinal.
[[nodiscard]] std::vector<NodeId> canonical_subset(
    int n, NodeId sender, const std::vector<NodeId>& faulty);

/// True iff `faulty` (sorted) is its class's canonical representative.
[[nodiscard]] bool is_subset_representative(
    int n, NodeId sender, const std::vector<NodeId>& faulty);

/// Number of subsets conjugate to `faulty` (its class included):
/// C(n-1, f-1) when the sender is faulty, C(n-1, f) otherwise.
[[nodiscard]] std::uint64_t subset_class_size(
    int n, NodeId sender, const std::vector<NodeId>& faulty);

}  // namespace da::faults
