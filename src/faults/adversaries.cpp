#include "faults/adversaries.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace da::faults {

namespace {

class SilentAdversary final : public sim::Adversary {
 public:
  std::optional<sim::Message> corrupt(const sim::Message&) override {
    return std::nullopt;
  }
};

class ConstantLiar final : public sim::Adversary {
 public:
  explicit ConstantLiar(Value lie) : lie_(lie) {}
  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    sim::Message out = msg;
    out.value = lie_;
    return out;
  }

 private:
  Value lie_;
};

class Equivocator final : public sim::Adversary {
 public:
  Equivocator(Value a, Value b) : a_(a), b_(b) {}
  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    sim::Message out = msg;
    out.value = msg.to % 2 == 0 ? a_ : b_;
    return out;
  }

 private:
  Value a_;
  Value b_;
};

class PivotEquivocator final : public sim::Adversary {
 public:
  PivotEquivocator(Value low, Value high, NodeId pivot)
      : low_(low), high_(high), pivot_(pivot) {}
  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    sim::Message out = msg;
    out.value = msg.to < pivot_ ? low_ : high_;
    return out;
  }

 private:
  Value low_;
  Value high_;
  NodeId pivot_;
};

class CrashAfter final : public sim::Adversary {
 public:
  explicit CrashAfter(int last_honest_round) : last_(last_honest_round) {}
  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    if (msg.round > last_) return std::nullopt;
    return msg;
  }

 private:
  int last_;
};

class RandomNoise final : public sim::Adversary {
 public:
  RandomNoise(std::uint64_t seed, std::int64_t lo, std::int64_t hi,
              double omit_prob)
      : seed_(seed), lo_(lo), hi_(hi), omit_prob_(omit_prob) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    // Derive everything from the message identity, never from call order.
    std::uint64_t h = mix64(seed_, static_cast<std::uint64_t>(msg.from));
    h = mix64(h, static_cast<std::uint64_t>(msg.to));
    h = mix64(h, static_cast<std::uint64_t>(msg.round));
    h = mix64(h, msg.path.hash());
    const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (roll < omit_prob_) return std::nullopt;
    const auto span =
        static_cast<std::uint64_t>(hi_ - lo_ + 1);
    sim::Message out = msg;
    out.value = Value::of(lo_ + static_cast<std::int64_t>(mix64(h) % span));
    return out;
  }

 private:
  std::uint64_t seed_;
  std::int64_t lo_;
  std::int64_t hi_;
  double omit_prob_;
};

class TargetedSplit final : public sim::Adversary {
 public:
  TargetedSplit(std::vector<NodeId> target, Value lie)
      : target_(std::move(target)), lie_(lie) {
    std::sort(target_.begin(), target_.end());
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    if (std::binary_search(target_.begin(), target_.end(), msg.to)) {
      return msg;  // tell the target subset the truth
    }
    sim::Message out = msg;
    out.value = lie_;
    return out;
  }

 private:
  std::vector<NodeId> target_;
  Value lie_;
};

}  // namespace

std::unique_ptr<sim::Adversary> honest() {
  return std::make_unique<sim::HonestAdversary>();
}

std::unique_ptr<sim::Adversary> silent() {
  return std::make_unique<SilentAdversary>();
}

std::unique_ptr<sim::Adversary> constant_liar(Value lie) {
  return std::make_unique<ConstantLiar>(lie);
}

std::unique_ptr<sim::Adversary> default_spammer() {
  return std::make_unique<ConstantLiar>(Value::def());
}

std::unique_ptr<sim::Adversary> equivocator(Value a, Value b) {
  return std::make_unique<Equivocator>(a, b);
}

std::unique_ptr<sim::Adversary> pivot_equivocator(Value low, Value high,
                                                  NodeId pivot) {
  return std::make_unique<PivotEquivocator>(low, high, pivot);
}

std::unique_ptr<sim::Adversary> crash_after(int last_honest_round) {
  return std::make_unique<CrashAfter>(last_honest_round);
}

std::unique_ptr<sim::Adversary> random_noise(std::uint64_t seed,
                                             std::int64_t lo, std::int64_t hi,
                                             double omit_prob) {
  DA_EXPECTS(lo <= hi);
  return std::make_unique<RandomNoise>(seed, lo, hi, omit_prob);
}

std::unique_ptr<sim::Adversary> targeted_split(std::vector<NodeId> target,
                                               Value lie) {
  return std::make_unique<TargetedSplit>(std::move(target), lie);
}

}  // namespace da::faults
