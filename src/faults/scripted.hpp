#pragma once

#include <memory>
#include <vector>

#include "sim/adversary.hpp"
#include "util/ids.hpp"
#include "util/path.hpp"
#include "util/value.hpp"

namespace da::faults {

/// One rewrite rule of a scripted adversary. A field left at its wildcard
/// default matches anything. `path_prefix` matches messages whose relay
/// path begins with the given node sequence.
struct Rule {
  NodeId from = kNoNode;   // kNoNode = any faulty sender
  int round = -1;          // -1 = any round
  Path path_prefix{};      // empty = any path
  NodeId to = kNoNode;     // kNoNode = any destination

  enum class Action { kReplace, kOmit, kPass };
  Action action = Action::kPass;
  Value value{};  // used by kReplace

  [[nodiscard]] bool matches(const sim::Message& msg) const;
};

/// Replays an exact fault script: the first matching rule decides each
/// message's fate; unmatched messages pass through unmodified. This is how
/// the Figure 2 proof scenarios ("node A pretends to have received alpha
/// from sender S") are reproduced verbatim.
class ScriptedAdversary final : public sim::Adversary {
 public:
  explicit ScriptedAdversary(std::vector<Rule> rules);

  [[nodiscard]] std::optional<sim::Message> corrupt(
      const sim::Message& msg) override;

 private:
  std::vector<Rule> rules_;
};

[[nodiscard]] std::unique_ptr<sim::Adversary> scripted(
    std::vector<Rule> rules);

}  // namespace da::faults
