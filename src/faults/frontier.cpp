#include "faults/frontier.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"

namespace da::faults {

namespace {

constexpr std::string_view kMagic = "da-frontier";
constexpr std::string_view kVersionPlain = "v1";
constexpr std::string_view kVersionQuotient = "v2";

const obs::Counter& saves_counter() {
  static const obs::Counter c("search.frontier.saves");
  return c;
}
const obs::Counter& loads_counter() {
  static const obs::Counter c("search.frontier.loads");
  return c;
}

FrontierParse fail(std::string error) {
  FrontierParse out;
  out.error = std::move(error);
  return out;
}

/// Validates the class table (v2): sorted by base, disjoint, in-range,
/// and reconciling exactly to the unreduced space (sum of size * weight
/// == space — the corruption check that catches dropped class lines).
std::string check_classes(const Frontier& frontier) {
  std::uint64_t prev_end = 0;
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < frontier.classes.size(); ++i) {
    const FrontierClass& c = frontier.classes[i];
    if (c.size == 0 || c.weight == 0) return "invalid class record";
    if (c.base > frontier.space - c.size || c.size > frontier.space) {
      return "class beyond space";
    }
    if (i > 0 && c.base < prev_end) {
      return c.base == frontier.classes[i - 1].base ? "duplicate class"
                                                    : "overlapping classes";
    }
    prev_end = c.end();
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
    if (c.weight > (limit - covered) / c.size) {
      return "class weights overflow";
    }
    covered += c.size * c.weight;
  }
  if (!frontier.classes.empty() && covered != frontier.space) {
    return "class weights do not reconcile to the space";
  }
  return {};
}

/// Validates shard geometry shared by the parser and the merger: sorted,
/// in-range, non-overlapping, cursors and hits consistent — and, on a
/// quotiented frontier, contained in some class's representative range.
std::string check_shards(const Frontier& frontier) {
  std::uint64_t prev_end = 0;
  std::size_t cls = 0;
  for (std::size_t i = 0; i < frontier.shards.size(); ++i) {
    const FrontierShard& s = frontier.shards[i];
    if (s.begin >= s.end) return "empty shard range";
    if (s.end > frontier.space) return "shard beyond space";
    if (i > 0 && s.begin < prev_end) {
      return s.begin == frontier.shards[i - 1].begin ? "duplicate shard"
                                                     : "overlapping shards";
    }
    prev_end = s.end;
    if (s.cursor < s.begin || s.cursor > s.end) return "cursor out of range";
    if (s.hit != sweep::kNoHit) {
      if (s.hit < s.begin || s.hit >= s.end) return "hit outside shard";
      if (s.cursor != s.end) return "hit with unsettled cursor";
    }
    if (!frontier.classes.empty()) {
      // Shards and classes are both sorted, so one forward walk suffices.
      while (cls < frontier.classes.size() &&
             frontier.classes[cls].end() <= s.begin) {
        ++cls;
      }
      if (cls >= frontier.classes.size() ||
          s.begin < frontier.classes[cls].base ||
          s.end > frontier.classes[cls].end()) {
        return "shard outside class ranges";
      }
    }
  }
  return {};
}

bool same_classes(const Frontier& a, const Frontier& b) {
  if (a.classes.size() != b.classes.size()) return false;
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    if (a.classes[i].base != b.classes[i].base ||
        a.classes[i].size != b.classes[i].size ||
        a.classes[i].weight != b.classes[i].weight) {
      return false;
    }
  }
  return true;
}

bool same_header(const Frontier& a, const Frontier& b) {
  return a.config.n == b.config.n && a.config.m == b.config.m &&
         a.config.u == b.config.u && a.max_f == b.max_f && a.seed == b.seed &&
         a.space == b.space && same_classes(a, b);
}

}  // namespace

std::uint64_t Frontier::best_hit() const {
  std::uint64_t best = sweep::kNoHit;
  for (const FrontierShard& s : shards) best = std::min(best, s.hit);
  return best;
}

bool Frontier::covers_space() const {
  if (classes.empty()) {
    std::uint64_t next = 0;
    for (const FrontierShard& s : shards) {
      if (s.begin != next) return false;
      next = s.end;
    }
    return next == space && space > 0;
  }
  // Quotiented: the shards must tile exactly the union of the class
  // representative ranges (both lists are sorted by base).
  std::size_t j = 0;
  for (const FrontierClass& c : classes) {
    std::uint64_t next = c.base;
    while (next < c.end()) {
      if (j >= shards.size() || shards[j].begin != next ||
          shards[j].end > c.end()) {
        return false;
      }
      next = shards[j].end;
      ++j;
    }
  }
  return j == shards.size() && space > 0;
}

bool Frontier::settled() const {
  if (!covers_space()) return false;
  const std::uint64_t hit = best_hit();
  for (const FrontierShard& s : shards) {
    if (!s.settled() && s.cursor < hit) return false;
  }
  return true;
}

void Frontier::normalize() {
  const std::uint64_t hit = best_hit();
  if (hit == sweep::kNoHit) return;
  for (FrontierShard& s : shards) {
    if (s.begin > hit) {
      s.cursor = s.begin;
      s.executions = 0;
      s.weighted = 0;
      s.hit = sweep::kNoHit;
    }
  }
}

std::string serialize_frontier(const Frontier& frontier) {
  Frontier sorted = frontier;
  std::sort(sorted.classes.begin(), sorted.classes.end(),
            [](const FrontierClass& a, const FrontierClass& b) {
              return a.base < b.base;
            });
  std::sort(sorted.shards.begin(), sorted.shards.end(),
            [](const FrontierShard& a, const FrontierShard& b) {
              return a.begin < b.begin;
            });
  std::ostringstream out;
  out << kMagic << ' '
      << (sorted.classes.empty() ? kVersionPlain : kVersionQuotient) << '\n';
  out << "config " << sorted.config.n << ' ' << sorted.config.m << ' '
      << sorted.config.u << ' ' << sorted.max_f << ' ' << sorted.seed << ' '
      << sorted.space << '\n';
  for (const FrontierClass& c : sorted.classes) {
    out << "class " << c.base << ' ' << c.size << ' ' << c.weight << '\n';
  }
  for (const FrontierShard& s : sorted.shards) {
    out << "shard " << s.begin << ' ' << s.end << ' ' << s.cursor << ' '
        << s.executions << ' ' << s.weighted << ' ';
    if (s.hit == sweep::kNoHit) {
      out << '-';
    } else {
      out << s.hit;
    }
    out << '\n';
  }
  out << "end " << sorted.shards.size() << '\n';
  return out.str();
}

FrontierParse parse_frontier(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;

  if (!std::getline(in, line)) return fail("empty frontier");
  bool quotient = false;
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != kMagic) return fail("not a frontier file");
    if (version == kVersionQuotient) {
      quotient = true;
    } else if (version != kVersionPlain) {
      return fail("unsupported frontier version: " + version);
    }
  }

  Frontier frontier;
  if (!std::getline(in, line)) return fail("truncated frontier: no config");
  {
    std::istringstream config(line);
    std::string tag;
    config >> tag >> frontier.config.n >> frontier.config.m >>
        frontier.config.u >> frontier.max_f >> frontier.seed >>
        frontier.space;
    if (tag != "config" || config.fail()) return fail("malformed config line");
    if (!frontier.config.valid()) return fail("invalid config");
    if (frontier.space == 0) return fail("empty search space");
  }

  bool terminated = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream rec(line);
    std::string tag;
    rec >> tag;
    if (tag == "end") {
      std::size_t count = 0;
      rec >> count;
      if (rec.fail() || count != frontier.shards.size()) {
        return fail("truncated frontier: shard count mismatch");
      }
      terminated = true;
      break;
    }
    if (tag == "class") {
      if (!quotient) return fail("class record in a v1 frontier");
      if (!frontier.shards.empty()) {
        return fail("class record after shard records");
      }
      FrontierClass cls;
      rec >> cls.base >> cls.size >> cls.weight;
      if (rec.fail()) return fail("malformed class line");
      frontier.classes.push_back(cls);
      continue;
    }
    if (tag != "shard") return fail("unknown record: " + tag);
    FrontierShard shard;
    std::string hit;
    rec >> shard.begin >> shard.end >> shard.cursor >> shard.executions >>
        shard.weighted >> hit;
    if (rec.fail()) return fail("malformed shard line");
    if (hit != "-") {
      try {
        std::size_t used = 0;
        shard.hit = std::stoull(hit, &used);
        if (used != hit.size()) return fail("malformed shard hit");
      } catch (const std::exception&) {
        return fail("malformed shard hit");
      }
    }
    frontier.shards.push_back(shard);
  }
  if (!terminated) return fail("truncated frontier: missing end record");
  if (quotient && frontier.classes.empty()) {
    return fail("v2 frontier without class records");
  }
  if (std::string error = check_classes(frontier); !error.empty()) {
    return fail(std::move(error));
  }
  if (std::string error = check_shards(frontier); !error.empty()) {
    return fail(std::move(error));
  }
  FrontierParse out;
  out.frontier = std::move(frontier);
  return out;
}

std::vector<Frontier> split_frontier(const Frontier& frontier,
                                     std::size_t parts) {
  std::vector<Frontier> out(std::max<std::size_t>(parts, 1));
  for (Frontier& part : out) {
    part.config = frontier.config;
    part.max_f = frontier.max_f;
    part.seed = frontier.seed;
    part.space = frontier.space;
    part.classes = frontier.classes;
  }
  for (std::size_t i = 0; i < frontier.shards.size(); ++i) {
    out[i % out.size()].shards.push_back(frontier.shards[i]);
  }
  return out;
}

FrontierParse merge_frontiers(const std::vector<Frontier>& parts) {
  if (parts.empty()) return fail("nothing to merge");
  Frontier merged;
  merged.config = parts.front().config;
  merged.max_f = parts.front().max_f;
  merged.seed = parts.front().seed;
  merged.space = parts.front().space;
  merged.classes = parts.front().classes;
  for (const Frontier& part : parts) {
    if (!same_header(part, merged)) return fail("header mismatch");
    merged.shards.insert(merged.shards.end(), part.shards.begin(),
                         part.shards.end());
  }
  std::sort(merged.shards.begin(), merged.shards.end(),
            [](const FrontierShard& a, const FrontierShard& b) {
              return a.begin < b.begin;
            });
  if (std::string error = check_shards(merged); !error.empty()) {
    return fail(std::move(error));
  }
  FrontierParse out;
  out.frontier = std::move(merged);
  return out;
}

bool save_frontier(const Frontier& frontier, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << serialize_frontier(frontier);
    if (!out.flush()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  const obs::MetricsScope metrics_scope;
  saves_counter().add();
  return true;
}

FrontierParse load_frontier(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  FrontierParse out = parse_frontier(text.str());
  if (out.ok()) {
    const obs::MetricsScope metrics_scope;
    loads_counter().add();
  }
  return out;
}

}  // namespace da::faults
