#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/adversary.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::faults {

/// All faulty nodes follow the protocol (control case).
[[nodiscard]] std::unique_ptr<sim::Adversary> honest();

/// Faulty nodes send nothing at all; receivers observe V_d everywhere.
[[nodiscard]] std::unique_ptr<sim::Adversary> silent();

/// Faulty nodes replace every outgoing value with `lie`.
[[nodiscard]] std::unique_ptr<sim::Adversary> constant_liar(Value lie);

/// Faulty nodes replace every outgoing value with V_d ("I heard nothing").
[[nodiscard]] std::unique_ptr<sim::Adversary> default_spammer();

/// Classical two-faced equivocation: value `a` to even-numbered
/// destinations, `b` to odd ones.
[[nodiscard]] std::unique_ptr<sim::Adversary> equivocator(Value a, Value b);

/// Two-faced split at a pivot: destinations with id < pivot get `low`,
/// the rest get `high`. Sweeping the pivot probes every split of the
/// receiver population — the attack shape behind the Figure 2 scenarios.
[[nodiscard]] std::unique_ptr<sim::Adversary> pivot_equivocator(Value low,
                                                                Value high,
                                                                NodeId pivot);

/// Honest through round `last_honest_round`, silent afterwards (crash).
[[nodiscard]] std::unique_ptr<sim::Adversary> crash_after(
    int last_honest_round);

/// Byzantine noise: per-message pseudorandom value from [lo,hi] (or an
/// omission with probability `omit_prob`). Deterministic per message
/// identity, so both runtimes see the same behaviour.
[[nodiscard]] std::unique_ptr<sim::Adversary> random_noise(std::uint64_t seed,
                                                           std::int64_t lo,
                                                           std::int64_t hi,
                                                           double omit_prob);

/// Colluding attack aimed at the VOTE threshold: faulty nodes relay the
/// true value to destinations in `target` and `lie` to everyone else,
/// trying to push exactly one side of the population over the threshold.
[[nodiscard]] std::unique_ptr<sim::Adversary> targeted_split(
    std::vector<NodeId> target, Value lie);

}  // namespace da::faults
