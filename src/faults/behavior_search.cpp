#include "faults/behavior_search.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/byz.hpp"
#include "faults/canon.hpp"
#include "obs/metrics.hpp"
#include "sim/round_engine.hpp"
#include "sweep/shard.hpp"
#include "util/contracts.hpp"

namespace da::faults {

namespace {

// Checkpoint-engine accounting (counter names are interned process-wide,
// so these are the same metrics search.cpp writes).
const obs::Counter& checkpoints_counter() {
  static const obs::Counter c("search.checkpoints");
  return c;
}
const obs::Counter& forks_counter() {
  static const obs::Counter c("search.forks");
  return c;
}
const obs::Counter& rounds_replayed_counter() {
  static const obs::Counter c("search.rounds_replayed");
  return c;
}
const obs::Counter& rounds_skipped_counter() {
  static const obs::Counter c("search.rounds_skipped");
  return c;
}

// Symmetry-reduction accounting (docs/OBSERVABILITY.md).
const obs::Counter& canon_representatives_counter() {
  static const obs::Counter c("search.canon.representatives");
  return c;
}
const obs::Counter& canon_skipped_counter() {
  static const obs::Counter c("search.canon.skipped");
  return c;
}
const obs::Counter& canon_weight_counter() {
  static const obs::Counter c("search.canon.weight");
  return c;
}

// Subset-conjugacy accounting: classes walked, conjugate subsets they
// stand for, and subsets skipped entirely (members - classes).
const obs::Counter& subset_classes_counter() {
  static const obs::Counter c("search.canon.subset_classes");
  return c;
}
const obs::Counter& subset_members_counter() {
  static const obs::Counter c("search.canon.subset_members");
  return c;
}
const obs::Counter& subset_skipped_counter() {
  static const obs::Counter c("search.canon.subset_skipped");
  return c;
}

// Frontier-driver accounting.
const obs::Counter& frontier_runs_counter() {
  static const obs::Counter c("search.frontier.runs");
  return c;
}
const obs::Counter& frontier_resumed_counter() {
  static const obs::Counter c("search.frontier.shards_resumed");
  return c;
}
const obs::Counter& frontier_checkpoints_counter() {
  static const obs::Counter c("search.frontier.checkpoints");
  return c;
}

/// Every message a faulty node emits in a depth-2 instance, keyed by
/// (from, to). Round-0 slots exist only for a faulty sender; round-1
/// relay slots for each faulty receiver (destinations outside {sender,
/// self} — relaying *to* the sender is useless, as the sender ignores
/// paths containing itself).
std::vector<std::pair<NodeId, NodeId>> controlled_slots(
    const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    if (from == spec.sender) {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from) slots.emplace_back(from, to);
      }
    } else {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from && to != spec.sender) slots.emplace_back(from, to);
      }
    }
  }
  return slots;
}

/// Plays one behaviour table over a dense n*n (from, to) grid. Mutable
/// (`set`) so the checkpoint walk re-points individual slots between forks
/// without rebuilding the adversary or allocating.
class TableAdversary final : public sim::Adversary {
 public:
  TableAdversary(int n, const std::vector<std::pair<NodeId, NodeId>>& slots)
      : n_(static_cast<std::size_t>(n)),
        values_(n_ * n_, Value::def()),
        controlled_(n_ * n_, 0) {
    for (const auto& [from, to] : slots) controlled_[cell(from, to)] = 1;
  }

  void set(std::pair<NodeId, NodeId> slot, Value value) {
    DA_EXPECTS(controlled_[cell(slot.first, slot.second)] != 0);
    values_[cell(slot.first, slot.second)] = value;
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const std::size_t c = cell(msg.from, msg.to);
    if (controlled_[c] == 0) return msg;  // e.g. relay addressed to sender
    sim::Message out = msg;
    out.value = values_[c];
    return out;
  }

 private:
  [[nodiscard]] std::size_t cell(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to);
  }

  std::size_t n_;
  std::vector<Value> values_;
  std::vector<char> controlled_;
};

constexpr std::uint64_t kSymbols = 4;

/// The canonical four-symbol alphabet (see the header comment).
std::array<Value, kSymbols> alphabet_for(Value sender_value) {
  return {sender_value, Value::of(100001), Value::of(100002), Value::def()};
}

/// Applies the base-4 digits of `counter` at slot positions [first, last).
/// Digits are *big-endian*: slot 0 is the most-significant digit, so a
/// contiguous ordinal block that shares its leading digits (exactly what
/// `ShardPlan::append_pow4` produces) shares its leading — i.e. round-0 —
/// slot assignments, which is what lets the checkpoint walk fork at the
/// round boundary. `fn(slot_index, value)` is a template parameter so the
/// per-execution inner loop inlines instead of dispatching through a
/// `std::function`.
template <typename SlotFn>
void apply_digits(std::uint64_t counter, std::size_t slots, std::size_t first,
                  std::size_t last, const std::array<Value, kSymbols>& alphabet,
                  SlotFn&& fn) {
  for (std::size_t i = first; i < last; ++i) {
    const std::uint64_t sym = (counter >> (2 * (slots - 1 - i))) & 3;
    fn(i, alphabet[sym]);
  }
}

std::uint64_t pow_symbols(std::size_t slots) {
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < slots; ++i) total *= kSymbols;
  return total;
}

/// One faulty subset's slice of the global enumeration: `base` is the
/// global ordinal of its behaviour #0. Segments are built in the serial
/// scan order (f ascending, subsets lexicographic), so the global ordinal
/// order *is* the serial scan order and the parallel sweep's first hit is
/// the serial search's first hit.
struct Segment {
  ScenarioSpec spec;
  std::vector<std::pair<NodeId, NodeId>> slots;
  SlotSymmetry sym;
  std::uint64_t base = 0;
  /// Conjugate subsets this segment stands for (1 when the subset
  /// quotient is off): every visit weight is multiplied by it.
  std::uint64_t class_size = 1;
  /// Leading slots that are the faulty sender's round-0 broadcast (0 when
  /// the sender is honest). Everything after is a round-1 relay slot.
  std::size_t round0_slots = 0;
};

/// Builds the representative segments. Bases always advance over *every*
/// subset — the global ordinal space stays the unreduced one — but with
/// `subset_symmetry` only one subset per conjugacy class materializes as
/// a Segment; the rest become gaps the shard plan skips. Representatives
/// are the lexicographically-first subsets of their class, which is also
/// the class member with the smallest base, so the quotiented walk's
/// first hit is the unquotiented walk's first hit (docs/SEARCH.md §6).
std::vector<Segment> build_segments(const Config& config, int limit,
                                    bool subset_symmetry) {
  std::vector<Segment> segments;
  std::uint64_t base = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.sender_value = Value::of(7);
      spec.faulty = faulty;
      auto slots = controlled_slots(spec);
      DA_EXPECTS(slots.size() <= 12);  // 4^12 = 16M: keep runs bounded
      if (subset_symmetry &&
          !is_subset_representative(config.n, spec.sender, faulty)) {
        subset_skipped_counter().add();
        base += pow_symbols(slots.size());
        return;
      }
      Segment seg;
      seg.spec = std::move(spec);
      seg.slots = std::move(slots);
      seg.sym = make_slot_symmetry(seg.spec, seg.slots);
      seg.round0_slots = seg.spec.sender_faulty()
                             ? static_cast<std::size_t>(config.n - 1)
                             : 0;
      // The sender is node 0 and subsets are sorted, so its round-0 slots
      // are exactly the leading run — the digit split relies on that.
      for (std::size_t i = 0; i < seg.slots.size(); ++i) {
        DA_EXPECTS((seg.slots[i].first == seg.spec.sender) ==
                   (i < seg.round0_slots));
      }
      if (subset_symmetry) {
        seg.class_size =
            subset_class_size(config.n, seg.spec.sender, seg.spec.faulty);
        subset_classes_counter().add();
        subset_members_counter().add(seg.class_size);
      }
      seg.base = base;
      base += pow_symbols(seg.slots.size());
      segments.push_back(std::move(seg));
    });
  }
  return segments;
}

/// Shard-local replay state for the checkpoint walk. Each shard is scanned
/// by exactly one pool worker, so no locking; the engine, adversary and
/// snapshots persist across the shard's ordinals and are reused in place.
struct ShardState {
  const Segment* segment = nullptr;
  std::unique_ptr<TableAdversary> adversary;
  std::unique_ptr<sim::RoundEngine> engine;
  sim::RoundEngine::Snapshot start;   // pre-dispatch(0): behaviour-independent
  sim::RoundEngine::Snapshot round1;  // pre-dispatch(1): fixed round-0 digits
  std::uint64_t round0_digits = 0;    // digit prefix `round1` was built for
  bool has_round1 = false;
  sim::RunResult result;
};

/// One constructed behaviour sweep: segments, shard plan, and the visitor
/// state shared by the one-shot search and the resumable frontier driver.
class BehaviorSweep {
 public:
  BehaviorSweep(const Config& config, int limit, bool checkpointing,
                bool symmetry, bool subset_symmetry)
      : checkpointing_(checkpointing),
        symmetry_(symmetry),
        subset_symmetry_(subset_symmetry),
        protocol_(config),
        segments_(build_segments(config, limit, subset_symmetry)) {
    for (const Segment& seg : segments_) {
      // Skipped conjugate segments are gaps: the plan advances its
      // ordinal space over them without creating shards, so every
      // remaining shard keeps its unreduced global ordinals.
      if (seg.base > plan_.total()) plan_.skip(seg.base - plan_.total());
      plan_.append_pow4(seg.slots.size());
    }
    const std::uint64_t space = behavior_search_space(config, limit);
    if (space > plan_.total()) plan_.skip(space - plan_.total());
    candidates_.resize(plan_.shard_count());
    shard_states_.resize(checkpointing_ ? plan_.shard_count() : 0);
  }

  [[nodiscard]] const sweep::ShardPlan& plan() const { return plan_; }

  /// The conjugacy-class table in frontier form (empty when the subset
  /// quotient is off — the segments then tile the space contiguously and
  /// the frontier serializes as v1).
  [[nodiscard]] std::vector<FrontierClass> classes() const {
    std::vector<FrontierClass> out;
    if (!subset_symmetry_) return out;
    out.reserve(segments_.size());
    for (const Segment& seg : segments_) {
      FrontierClass cls;
      cls.base = seg.base;
      cls.size = pow_symbols(seg.slots.size());
      cls.weight = seg.class_size;
      out.push_back(cls);
    }
    return out;
  }

  [[nodiscard]] sweep::Visitor visitor() {
    return [this](std::uint64_t ordinal, std::size_t shard, Rng&) {
      return visit(ordinal, shard);
    };
  }

  [[nodiscard]] const std::optional<Violation>& candidate(
      std::size_t shard) const {
    return candidates_[shard];
  }

  /// Scratch single-ordinal execution (no sweep, no checkpoint state).
  [[nodiscard]] std::optional<Violation> at(std::uint64_t ordinal) {
    const Segment& seg = segment_of(ordinal);
    const std::uint64_t counter = ordinal - seg.base;
    const std::size_t slots = seg.slots.size();
    const auto alphabet = alphabet_for(seg.spec.sender_value);
    TableAdversary adversary(seg.spec.config.n, seg.slots);
    apply_digits(counter, slots, 0, slots, alphabet,
                 [&](std::size_t i, Value v) {
                   adversary.set(seg.slots[i], v);
                 });
    const ConditionReport report =
        protocol_.run_and_check(seg.spec, &adversary);
    if (report.satisfied) return std::nullopt;
    return Violation{seg.spec, "behavior#" + std::to_string(counter), report};
  }

 private:
  [[nodiscard]] const Segment& segment_of(std::uint64_t ordinal) const {
    const auto seg_it = std::prev(std::upper_bound(
        segments_.begin(), segments_.end(), ordinal,
        [](std::uint64_t o, const Segment& s) { return o < s.base; }));
    return *seg_it;
  }

  sweep::Visit visit(std::uint64_t ordinal, std::size_t shard) {
    static const obs::Counter byz_executions("protocol.byz.executions");
    static const obs::Counter byz_messages("protocol.byz.messages_sent");
    const Segment& seg = segment_of(ordinal);
    const std::uint64_t counter = ordinal - seg.base;
    const std::size_t slots = seg.slots.size();
    const auto alphabet = alphabet_for(seg.spec.sender_value);

    // Weight starts at the subset-conjugacy class size (1 unquotiented)
    // and picks up the receiver-orbit size below; the product is what a
    // clean sweep reconciles against the full unreduced space.
    std::uint64_t weight = seg.class_size;
    if (symmetry_) {
      if (!seg.sym.trivial()) {
        // Non-canonical prefix: leap to the orbit's next representative.
        // Every ordinal in between shares a "column j > column j+1"
        // certificate, so nothing executable is skipped.
        const std::uint64_t canon = next_canonical(seg.sym, counter);
        if (canon != counter) {
          canon_skipped_counter().add(canon - counter);
          sweep::Visit skip;
          skip.executions = 0;
          skip.weight = 0;
          skip.next = seg.base + canon;
          return skip;
        }
        weight = checked_mul(weight, orbit_size(seg.sym, counter));
      }
      canon_representatives_counter().add();
      canon_weight_counter().add(weight);
    }

    const auto report_at = [&](const ConditionReport& report) -> sweep::Visit {
      sweep::Visit out;
      out.weight = weight;
      if (!report.satisfied) {
        candidates_[shard] = Violation{
            seg.spec, "behavior#" + std::to_string(counter), report};
        out.hit = true;
      }
      return out;
    };

    if (!checkpointing_) {
      // Scratch path: one full execution, adversary rebuilt per ordinal.
      TableAdversary adversary(seg.spec.config.n, seg.slots);
      apply_digits(counter, slots, 0, slots, alphabet,
                   [&](std::size_t i, Value v) {
                     adversary.set(seg.slots[i], v);
                   });
      return report_at(protocol_.run_and_check(seg.spec, &adversary));
    }

    // Checkpoint walk: ordinals inside a shard share their leading base-4
    // digits, i.e. their round-0 assignment, so the post-round-0 state is
    // computed once per leading-digit block and forked for every round-1
    // assignment underneath it (docs/SEARCH.md, "Checkpoint engine").
    // The symmetry skip composes freely: it only changes *which* ordinals
    // of the block are visited, not how they replay.
    ShardState& st = shard_states_[shard];
    if (st.segment != &seg) {
      st.segment = &seg;
      st.adversary =
          std::make_unique<TableAdversary>(seg.spec.config.n, seg.slots);
      sim::RunOptions run_options;
      run_options.faulty = seg.spec.faulty;
      run_options.adversary = st.adversary.get();
      st.engine = std::make_unique<sim::RoundEngine>(
          core::make_byz_processes(seg.spec.config, seg.spec.sender,
                                   seg.spec.sender_value),
          run_options);
      st.engine->begin();
      st.start = st.engine->snapshot();
      st.has_round1 = false;
      checkpoints_counter().add();
    }
    sim::RoundEngine& engine = *st.engine;
    const std::size_t r0 = seg.round0_slots;
    const std::uint64_t round0_digits =
        r0 == 0 ? 0 : counter >> (2 * (slots - r0));
    if (!st.has_round1 || st.round0_digits != round0_digits) {
      // (Re)build the post-round-0 checkpoint for this leading-digit
      // block: round-0 slots only exist for a faulty sender, and a faulty
      // sender emits nothing in round 1, so the two digit ranges address
      // disjoint dispatches.
      engine.restore(st.start);
      apply_digits(counter, slots, 0, r0, alphabet,
                   [&](std::size_t i, Value v) {
                     st.adversary->set(seg.slots[i], v);
                   });
      engine.dispatch_pending();
      engine.process_round();
      st.round1 = engine.snapshot();
      st.round0_digits = round0_digits;
      st.has_round1 = true;
      checkpoints_counter().add();
      rounds_replayed_counter().add(1);
    } else {
      engine.restore(st.round1);
      forks_counter().add();
      rounds_skipped_counter().add(1);
    }
    apply_digits(counter, slots, r0, slots, alphabet,
                 [&](std::size_t i, Value v) {
                   st.adversary->set(seg.slots[i], v);
                 });
    engine.dispatch_pending();
    engine.process_round();
    rounds_replayed_counter().add(1);
    DA_EXPECTS(engine.done());
    byz_executions.add();
    engine.finish_into(st.result);
    byz_messages.add(st.result.messages_sent);
    return report_at(check_conditions(seg.spec, st.result.decisions));
  }

  bool checkpointing_;
  bool symmetry_;
  bool subset_symmetry_;
  DegradableAgreement protocol_;
  std::vector<Segment> segments_;
  sweep::ShardPlan plan_;
  std::vector<std::optional<Violation>> candidates_;
  std::vector<ShardState> shard_states_;
};

int resolve_limit(const Config& config, int max_f) {
  return max_f < 0 ? config.u : max_f;
}

}  // namespace

std::optional<Violation> exhaustive_behavior_search(
    const Config& config, const BehaviorSearchOptions& options,
    const sweep::SweepOptions& sweep_options, sweep::SweepStats* stats) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);  // depth-2 instances only
  BehaviorSweep search(config, resolve_limit(config, options.max_f),
                       options.checkpointing, options.symmetry,
                       options.subset_symmetry);
  const sweep::SweepResult result =
      sweep::run_sweep(search.plan(), sweep_options, search.visitor());
  if (stats != nullptr) *stats = result.stats;
  if (!result.first_hit_shard.has_value()) return std::nullopt;
  return search.candidate(*result.first_hit_shard);
}

std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f, const sweep::SweepOptions& options,
    sweep::SweepStats* stats, bool checkpointing) {
  BehaviorSearchOptions search_options;
  search_options.max_f = max_f;
  search_options.checkpointing = checkpointing;
  return exhaustive_behavior_search(config, search_options, options, stats);
}

std::optional<Violation> exhaustive_behavior_search(const Config& config,
                                                    int max_f) {
  return exhaustive_behavior_search(config, max_f, sweep::SweepOptions{});
}

std::uint64_t behavior_search_space(const Config& config, int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = resolve_limit(config, max_f);
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      total += pow_symbols(controlled_slots(spec).size());
    });
  }
  return total;
}

std::uint64_t behavior_search_canonical_space(const Config& config,
                                              int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = resolve_limit(config, max_f);
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      const auto slots = controlled_slots(spec);
      total += canonical_count(make_slot_symmetry(spec, slots));
    });
  }
  return total;
}

std::uint64_t behavior_search_quotient_space(const Config& config,
                                             int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = resolve_limit(config, max_f);
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      if (!is_subset_representative(config.n, spec.sender, faulty)) return;
      const auto slots = controlled_slots(spec);
      total += canonical_count(make_slot_symmetry(spec, slots));
    });
  }
  return total;
}

std::optional<Violation> behavior_at(const Config& config, int max_f,
                                     std::uint64_t ordinal) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);
  const int limit = resolve_limit(config, max_f);
  DA_EXPECTS(ordinal < behavior_search_space(config, limit));
  // Unquotiented on purpose: any full-space ordinal must resolve, not
  // just ordinals inside representative segments.
  BehaviorSweep search(config, limit, /*checkpointing=*/false,
                       /*symmetry=*/false, /*subset_symmetry=*/false);
  return search.at(ordinal);
}

Frontier init_behavior_frontier(const Config& config, int max_f,
                                std::uint64_t seed, bool subset_symmetry) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);
  const int limit = resolve_limit(config, max_f);
  BehaviorSweep search(config, limit, /*checkpointing=*/false,
                       /*symmetry=*/false, subset_symmetry);
  Frontier frontier;
  frontier.config = config;
  frontier.max_f = limit;  // resolved, so the header is self-contained
  frontier.seed = seed;
  frontier.space = behavior_search_space(config, limit);
  frontier.classes = search.classes();
  frontier.shards.reserve(search.plan().shard_count());
  for (std::size_t s = 0; s < search.plan().shard_count(); ++s) {
    const sweep::ShardRange range = search.plan().shard(s);
    FrontierShard shard;
    shard.begin = range.begin;
    shard.end = range.end;
    shard.cursor = range.begin;
    frontier.shards.push_back(shard);
  }
  return frontier;
}

FrontierRun run_behavior_frontier(Frontier& frontier,
                                  const FrontierRunOptions& options) {
  const obs::MetricsScope metrics_scope;  // flush driver-side counters
  FrontierRun run;
  if (!frontier.config.valid() || frontier.config.m > 1) {
    run.error = "frontier config is not a depth-2 instance";
    return run;
  }
  const int limit = resolve_limit(frontier.config, frontier.max_f);
  if (frontier.space != behavior_search_space(frontier.config, limit)) {
    run.error = "frontier space does not match the search space";
    return run;
  }
  // The subset quotient is baked into the frontier: class records mean a
  // quotiented plan; their absence (a v1 file) means the full plan.
  const bool subset_symmetry = !frontier.classes.empty();
  BehaviorSweep search(frontier.config, limit, options.checkpointing,
                       options.symmetry, subset_symmetry);
  if (subset_symmetry) {
    const std::vector<FrontierClass> expected = search.classes();
    bool match = frontier.classes.size() == expected.size();
    for (std::size_t i = 0; match && i < expected.size(); ++i) {
      match = frontier.classes[i].base == expected[i].base &&
              frontier.classes[i].size == expected[i].size &&
              frontier.classes[i].weight == expected[i].weight;
    }
    if (!match) {
      run.error = "frontier classes do not match the search's class plan";
      return run;
    }
  }
  const sweep::ShardPlan& plan = search.plan();

  // Map frontier shards onto plan shards (the frontier may be a split
  // part holding a subset). Foreign shards resume as settled-with-zero
  // so the sweep never scans them; they are not folded back.
  constexpr std::size_t kForeign = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> frontier_of(plan.shard_count(), kForeign);
  sweep::SweepResume resume;
  resume.shards.resize(plan.shard_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const sweep::ShardRange range = plan.shard(s);
    resume.shards[s].begin = range.begin;
    resume.shards[s].end = range.end;
    resume.shards[s].cursor = range.end;  // foreign default: skip
  }
  {
    std::size_t s = 0;
    for (std::size_t i = 0; i < frontier.shards.size(); ++i) {
      const FrontierShard& shard = frontier.shards[i];
      while (s < plan.shard_count() && plan.shard(s).begin < shard.begin) {
        ++s;
      }
      if (s >= plan.shard_count() || plan.shard(s).begin != shard.begin ||
          plan.shard(s).end != shard.end) {
        run.error = "frontier shards do not match the search's shard plan";
        return run;
      }
      frontier_of[s] = i;
      resume.shards[s].cursor = shard.cursor;
      resume.shards[s].executions = shard.executions;
      resume.shards[s].weighted = shard.weighted;
      resume.shards[s].first_hit = shard.hit;
      if (!shard.settled()) frontier_resumed_counter().add();
    }
  }
  frontier_runs_counter().add();

  std::atomic<int> completed{0};
  std::mutex frontier_mutex;
  sweep::SweepOptions sweep_options;
  sweep_options.jobs = options.jobs;
  sweep_options.seed = frontier.seed;
  sweep_options.resume = &resume;
  if (options.max_shards >= 0) {
    sweep_options.stop = [&completed, max = options.max_shards] {
      return completed.load(std::memory_order_relaxed) >= max;
    };
  }
  sweep_options.on_shard_done = [&](std::size_t s,
                                    const sweep::ShardStats& stats) {
    completed.fetch_add(1, std::memory_order_relaxed);
    const std::size_t i = frontier_of[s];
    if (i == kForeign) return;
    const std::lock_guard<std::mutex> lock(frontier_mutex);
    frontier.shards[i].cursor = stats.cursor;
    frontier.shards[i].executions = stats.executions;
    frontier.shards[i].weighted = stats.weighted;
    frontier.shards[i].hit = stats.first_hit;
    frontier_checkpoints_counter().add();
    if (options.checkpoint) options.checkpoint(frontier);
  };

  const sweep::SweepResult result =
      sweep::run_sweep(plan, sweep_options, search.visitor());
  run.stats = result.stats;

  // Fold every owned shard back (suspended cursors included — the
  // on_shard_done hook only saw shards that settled this run).
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const std::size_t i = frontier_of[s];
    if (i == kForeign) continue;
    const sweep::ShardStats& stats = result.stats.per_shard[s];
    frontier.shards[i].cursor = stats.cursor;
    frontier.shards[i].executions = stats.executions;
    frontier.shards[i].weighted = stats.weighted;
    frontier.shards[i].hit = stats.first_hit;
  }

  const std::uint64_t hit = frontier.best_hit();
  if (hit != sweep::kNoHit) {
    run.violation = search.at(hit);
    DA_ENSURES(run.violation.has_value());
  }
  if (frontier.settled()) {
    frontier.normalize();
    run.settled = true;
  }
  return run;
}

}  // namespace da::faults
