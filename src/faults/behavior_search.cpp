#include "faults/behavior_search.hpp"

#include <map>
#include <utility>

#include "core/byz.hpp"
#include "util/contracts.hpp"

namespace da::faults {

namespace {

/// Every message a faulty node emits in a depth-2 instance, keyed by
/// (from, to). Round-0 slots exist only for a faulty sender; round-1
/// relay slots for each faulty receiver (destinations outside {sender,
/// self} — relaying *to* the sender is useless, as the sender ignores
/// paths containing itself).
std::vector<std::pair<NodeId, NodeId>> controlled_slots(
    const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    if (from == spec.sender) {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from) slots.emplace_back(from, to);
      }
    } else {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from && to != spec.sender) slots.emplace_back(from, to);
      }
    }
  }
  return slots;
}

/// Plays one fully specified behaviour table.
class TableAdversary final : public sim::Adversary {
 public:
  TableAdversary(const std::vector<std::pair<NodeId, NodeId>>& slots,
                 const std::vector<Value>& assignment) {
    DA_EXPECTS(slots.size() == assignment.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      table_.emplace(slots[i], assignment[i]);
    }
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const auto it = table_.find({msg.from, msg.to});
    if (it == table_.end()) return msg;  // e.g. relay addressed to sender
    sim::Message out = msg;
    out.value = it->second;
    return out;
  }

 private:
  std::map<std::pair<NodeId, NodeId>, Value> table_;
};

constexpr std::uint64_t kSymbols = 4;

std::vector<Value> decode(std::uint64_t counter, std::size_t slots,
                          Value sender_value) {
  const Value alphabet[kSymbols] = {sender_value, Value::of(100001),
                                    Value::of(100002), Value::def()};
  std::vector<Value> assignment;
  assignment.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    assignment.push_back(alphabet[counter % kSymbols]);
    counter /= kSymbols;
  }
  return assignment;
}

std::uint64_t pow_symbols(std::size_t slots) {
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < slots; ++i) total *= kSymbols;
  return total;
}

}  // namespace

std::optional<Violation> exhaustive_behavior_search(const Config& config,
                                                    int max_f) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);  // depth-2 instances only
  const int limit = max_f < 0 ? config.u : max_f;
  const DegradableAgreement protocol(config);

  std::optional<Violation> found;
  for (int f = 1; f <= limit && !found; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      if (found) return;
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.sender_value = Value::of(7);
      spec.faulty = faulty;

      const auto slots = controlled_slots(spec);
      DA_EXPECTS(slots.size() <= 12);  // 4^12 = 16M: keep runs bounded
      const std::uint64_t total = pow_symbols(slots.size());
      for (std::uint64_t counter = 0; counter < total; ++counter) {
        TableAdversary adversary(
            slots, decode(counter, slots.size(), spec.sender_value));
        const ConditionReport report =
            protocol.run_and_check(spec, &adversary);
        if (!report.satisfied) {
          found = Violation{spec, "behavior#" + std::to_string(counter),
                            report};
          return;
        }
      }
    });
  }
  return found;
}

std::uint64_t behavior_search_space(const Config& config, int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = max_f < 0 ? config.u : max_f;
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      total += pow_symbols(controlled_slots(spec).size());
    });
  }
  return total;
}

}  // namespace da::faults
