#include "faults/behavior_search.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "core/byz.hpp"
#include "obs/metrics.hpp"
#include "sim/round_engine.hpp"
#include "sweep/shard.hpp"
#include "util/contracts.hpp"

namespace da::faults {

namespace {

// Checkpoint-engine accounting (counter names are interned process-wide,
// so these are the same metrics search.cpp writes).
const obs::Counter& checkpoints_counter() {
  static const obs::Counter c("search.checkpoints");
  return c;
}
const obs::Counter& forks_counter() {
  static const obs::Counter c("search.forks");
  return c;
}
const obs::Counter& rounds_replayed_counter() {
  static const obs::Counter c("search.rounds_replayed");
  return c;
}
const obs::Counter& rounds_skipped_counter() {
  static const obs::Counter c("search.rounds_skipped");
  return c;
}

/// Every message a faulty node emits in a depth-2 instance, keyed by
/// (from, to). Round-0 slots exist only for a faulty sender; round-1
/// relay slots for each faulty receiver (destinations outside {sender,
/// self} — relaying *to* the sender is useless, as the sender ignores
/// paths containing itself).
std::vector<std::pair<NodeId, NodeId>> controlled_slots(
    const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    if (from == spec.sender) {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from) slots.emplace_back(from, to);
      }
    } else {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from && to != spec.sender) slots.emplace_back(from, to);
      }
    }
  }
  return slots;
}

/// Plays one behaviour table over a dense n*n (from, to) grid. Mutable
/// (`set`) so the checkpoint walk re-points individual slots between forks
/// without rebuilding the adversary or allocating.
class TableAdversary final : public sim::Adversary {
 public:
  TableAdversary(int n, const std::vector<std::pair<NodeId, NodeId>>& slots)
      : n_(static_cast<std::size_t>(n)),
        values_(n_ * n_, Value::def()),
        controlled_(n_ * n_, 0) {
    for (const auto& [from, to] : slots) controlled_[cell(from, to)] = 1;
  }

  void set(std::pair<NodeId, NodeId> slot, Value value) {
    DA_EXPECTS(controlled_[cell(slot.first, slot.second)] != 0);
    values_[cell(slot.first, slot.second)] = value;
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const std::size_t c = cell(msg.from, msg.to);
    if (controlled_[c] == 0) return msg;  // e.g. relay addressed to sender
    sim::Message out = msg;
    out.value = values_[c];
    return out;
  }

 private:
  [[nodiscard]] std::size_t cell(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to);
  }

  std::size_t n_;
  std::vector<Value> values_;
  std::vector<char> controlled_;
};

constexpr std::uint64_t kSymbols = 4;

/// The canonical four-symbol alphabet (see the header comment).
std::array<Value, kSymbols> alphabet_for(Value sender_value) {
  return {sender_value, Value::of(100001), Value::of(100002), Value::def()};
}

/// Applies the base-4 digits of `counter` at slot positions [first, last).
/// Digits are *big-endian*: slot 0 is the most-significant digit, so a
/// contiguous ordinal block that shares its leading digits (exactly what
/// `ShardPlan::append_pow4` produces) shares its leading — i.e. round-0 —
/// slot assignments, which is what lets the checkpoint walk fork at the
/// round boundary. `fn(slot_index, value)` is a template parameter so the
/// per-execution inner loop inlines instead of dispatching through a
/// `std::function`.
template <typename SlotFn>
void apply_digits(std::uint64_t counter, std::size_t slots, std::size_t first,
                  std::size_t last, const std::array<Value, kSymbols>& alphabet,
                  SlotFn&& fn) {
  for (std::size_t i = first; i < last; ++i) {
    const std::uint64_t sym = (counter >> (2 * (slots - 1 - i))) & 3;
    fn(i, alphabet[sym]);
  }
}

std::uint64_t pow_symbols(std::size_t slots) {
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < slots; ++i) total *= kSymbols;
  return total;
}

/// One faulty subset's slice of the global enumeration: `base` is the
/// global ordinal of its behaviour #0. Segments are built in the serial
/// scan order (f ascending, subsets lexicographic), so the global ordinal
/// order *is* the serial scan order and the parallel sweep's first hit is
/// the serial search's first hit.
struct Segment {
  ScenarioSpec spec;
  std::vector<std::pair<NodeId, NodeId>> slots;
  std::uint64_t base = 0;
  /// Leading slots that are the faulty sender's round-0 broadcast (0 when
  /// the sender is honest). Everything after is a round-1 relay slot.
  std::size_t round0_slots = 0;
};

std::vector<Segment> build_segments(const Config& config, int limit) {
  std::vector<Segment> segments;
  std::uint64_t base = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      Segment seg;
      seg.spec.config = config;
      seg.spec.sender = 0;
      seg.spec.sender_value = Value::of(7);
      seg.spec.faulty = faulty;
      seg.slots = controlled_slots(seg.spec);
      DA_EXPECTS(seg.slots.size() <= 12);  // 4^12 = 16M: keep runs bounded
      seg.round0_slots = seg.spec.sender_faulty()
                             ? static_cast<std::size_t>(config.n - 1)
                             : 0;
      // The sender is node 0 and subsets are sorted, so its round-0 slots
      // are exactly the leading run — the digit split relies on that.
      for (std::size_t i = 0; i < seg.slots.size(); ++i) {
        DA_EXPECTS((seg.slots[i].first == seg.spec.sender) ==
                   (i < seg.round0_slots));
      }
      seg.base = base;
      base += pow_symbols(seg.slots.size());
      segments.push_back(std::move(seg));
    });
  }
  return segments;
}

/// Shard-local replay state for the checkpoint walk. Each shard is scanned
/// by exactly one pool worker, so no locking; the engine, adversary and
/// snapshots persist across the shard's ordinals and are reused in place.
struct ShardState {
  const Segment* segment = nullptr;
  std::unique_ptr<TableAdversary> adversary;
  std::unique_ptr<sim::RoundEngine> engine;
  sim::RoundEngine::Snapshot start;   // pre-dispatch(0): behaviour-independent
  sim::RoundEngine::Snapshot round1;  // pre-dispatch(1): fixed round-0 digits
  std::uint64_t round0_digits = 0;    // digit prefix `round1` was built for
  bool has_round1 = false;
  sim::RunResult result;
};

}  // namespace

std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f, const sweep::SweepOptions& options,
    sweep::SweepStats* stats, bool checkpointing) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);  // depth-2 instances only
  const int limit = max_f < 0 ? config.u : max_f;
  const DegradableAgreement protocol(config);
  static const obs::Counter byz_executions("protocol.byz.executions");
  static const obs::Counter byz_messages("protocol.byz.messages_sent");

  const std::vector<Segment> segments = build_segments(config, limit);
  sweep::ShardPlan plan;
  for (const Segment& seg : segments) {
    plan.append_pow4(seg.slots.size());
  }

  // Each shard lies inside one segment (append_pow4 never crosses a
  // segment boundary); candidate violations are stashed per shard.
  std::vector<std::optional<Violation>> candidates(plan.shard_count());
  std::vector<ShardState> shard_states(checkpointing ? plan.shard_count() : 0);
  const auto visitor = [&](std::uint64_t ordinal, std::size_t shard,
                           Rng&) -> sweep::Visit {
    const auto seg_it = std::prev(std::upper_bound(
        segments.begin(), segments.end(), ordinal,
        [](std::uint64_t o, const Segment& s) { return o < s.base; }));
    const Segment& seg = *seg_it;
    const std::uint64_t counter = ordinal - seg.base;
    const std::size_t slots = seg.slots.size();
    const auto alphabet = alphabet_for(seg.spec.sender_value);

    const auto report_at = [&](const ConditionReport& report) -> sweep::Visit {
      if (report.satisfied) return {};
      candidates[shard] = Violation{
          seg.spec, "behavior#" + std::to_string(counter), report};
      return {.hit = true};
    };

    if (!checkpointing) {
      // Scratch path: one full execution, adversary rebuilt per ordinal.
      TableAdversary adversary(seg.spec.config.n, seg.slots);
      apply_digits(counter, slots, 0, slots, alphabet,
                   [&](std::size_t i, Value v) {
                     adversary.set(seg.slots[i], v);
                   });
      return report_at(protocol.run_and_check(seg.spec, &adversary));
    }

    // Checkpoint walk: ordinals inside a shard share their leading base-4
    // digits, i.e. their round-0 assignment, so the post-round-0 state is
    // computed once per leading-digit block and forked for every round-1
    // assignment underneath it (docs/SEARCH.md, "Checkpoint engine").
    ShardState& st = shard_states[shard];
    if (st.segment != &seg) {
      st.segment = &seg;
      st.adversary =
          std::make_unique<TableAdversary>(seg.spec.config.n, seg.slots);
      sim::RunOptions run_options;
      run_options.faulty = seg.spec.faulty;
      run_options.adversary = st.adversary.get();
      st.engine = std::make_unique<sim::RoundEngine>(
          core::make_byz_processes(config, seg.spec.sender,
                                   seg.spec.sender_value),
          run_options);
      st.engine->begin();
      st.start = st.engine->snapshot();
      st.has_round1 = false;
      checkpoints_counter().add();
    }
    sim::RoundEngine& engine = *st.engine;
    const std::size_t r0 = seg.round0_slots;
    const std::uint64_t round0_digits =
        r0 == 0 ? 0 : counter >> (2 * (slots - r0));
    if (!st.has_round1 || st.round0_digits != round0_digits) {
      // (Re)build the post-round-0 checkpoint for this leading-digit
      // block: round-0 slots only exist for a faulty sender, and a faulty
      // sender emits nothing in round 1, so the two digit ranges address
      // disjoint dispatches.
      engine.restore(st.start);
      apply_digits(counter, slots, 0, r0, alphabet,
                   [&](std::size_t i, Value v) {
                     st.adversary->set(seg.slots[i], v);
                   });
      engine.dispatch_pending();
      engine.process_round();
      st.round1 = engine.snapshot();
      st.round0_digits = round0_digits;
      st.has_round1 = true;
      checkpoints_counter().add();
      rounds_replayed_counter().add(1);
    } else {
      engine.restore(st.round1);
      forks_counter().add();
      rounds_skipped_counter().add(1);
    }
    apply_digits(counter, slots, r0, slots, alphabet,
                 [&](std::size_t i, Value v) {
                   st.adversary->set(seg.slots[i], v);
                 });
    engine.dispatch_pending();
    engine.process_round();
    rounds_replayed_counter().add(1);
    DA_EXPECTS(engine.done());
    byz_executions.add();
    engine.finish_into(st.result);
    byz_messages.add(st.result.messages_sent);
    return report_at(check_conditions(seg.spec, st.result.decisions));
  };

  const sweep::SweepResult result = sweep::run_sweep(plan, options, visitor);
  if (stats != nullptr) *stats = result.stats;
  if (!result.first_hit_shard.has_value()) return std::nullopt;
  return candidates[*result.first_hit_shard];
}

std::optional<Violation> exhaustive_behavior_search(const Config& config,
                                                    int max_f) {
  return exhaustive_behavior_search(config, max_f, sweep::SweepOptions{});
}

std::uint64_t behavior_search_space(const Config& config, int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = max_f < 0 ? config.u : max_f;
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      total += pow_symbols(controlled_slots(spec).size());
    });
  }
  return total;
}

}  // namespace da::faults
