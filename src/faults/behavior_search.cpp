#include "faults/behavior_search.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/byz.hpp"
#include "sweep/shard.hpp"
#include "util/contracts.hpp"

namespace da::faults {

namespace {

/// Every message a faulty node emits in a depth-2 instance, keyed by
/// (from, to). Round-0 slots exist only for a faulty sender; round-1
/// relay slots for each faulty receiver (destinations outside {sender,
/// self} — relaying *to* the sender is useless, as the sender ignores
/// paths containing itself).
std::vector<std::pair<NodeId, NodeId>> controlled_slots(
    const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    if (from == spec.sender) {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from) slots.emplace_back(from, to);
      }
    } else {
      for (NodeId to = 0; to < spec.config.n; ++to) {
        if (to != from && to != spec.sender) slots.emplace_back(from, to);
      }
    }
  }
  return slots;
}

/// Plays one fully specified behaviour table.
class TableAdversary final : public sim::Adversary {
 public:
  TableAdversary(const std::vector<std::pair<NodeId, NodeId>>& slots,
                 const std::vector<Value>& assignment) {
    DA_EXPECTS(slots.size() == assignment.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      table_.emplace(slots[i], assignment[i]);
    }
  }

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const auto it = table_.find({msg.from, msg.to});
    if (it == table_.end()) return msg;  // e.g. relay addressed to sender
    sim::Message out = msg;
    out.value = it->second;
    return out;
  }

 private:
  std::map<std::pair<NodeId, NodeId>, Value> table_;
};

constexpr std::uint64_t kSymbols = 4;

std::vector<Value> decode(std::uint64_t counter, std::size_t slots,
                          Value sender_value) {
  const Value alphabet[kSymbols] = {sender_value, Value::of(100001),
                                    Value::of(100002), Value::def()};
  std::vector<Value> assignment;
  assignment.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    assignment.push_back(alphabet[counter % kSymbols]);
    counter /= kSymbols;
  }
  return assignment;
}

std::uint64_t pow_symbols(std::size_t slots) {
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < slots; ++i) total *= kSymbols;
  return total;
}

/// One faulty subset's slice of the global enumeration: `base` is the
/// global ordinal of its behaviour #0. Segments are built in the serial
/// scan order (f ascending, subsets lexicographic), so the global ordinal
/// order *is* the serial scan order and the parallel sweep's first hit is
/// the serial search's first hit.
struct Segment {
  ScenarioSpec spec;
  std::vector<std::pair<NodeId, NodeId>> slots;
  std::uint64_t base = 0;
};

std::vector<Segment> build_segments(const Config& config, int limit) {
  std::vector<Segment> segments;
  std::uint64_t base = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      Segment seg;
      seg.spec.config = config;
      seg.spec.sender = 0;
      seg.spec.sender_value = Value::of(7);
      seg.spec.faulty = faulty;
      seg.slots = controlled_slots(seg.spec);
      DA_EXPECTS(seg.slots.size() <= 12);  // 4^12 = 16M: keep runs bounded
      seg.base = base;
      base += pow_symbols(seg.slots.size());
      segments.push_back(std::move(seg));
    });
  }
  return segments;
}

}  // namespace

std::optional<Violation> exhaustive_behavior_search(
    const Config& config, int max_f, const sweep::SweepOptions& options,
    sweep::SweepStats* stats) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(config.m <= 1);  // depth-2 instances only
  const int limit = max_f < 0 ? config.u : max_f;
  const DegradableAgreement protocol(config);

  const std::vector<Segment> segments = build_segments(config, limit);
  sweep::ShardPlan plan;
  for (const Segment& seg : segments) {
    plan.append_pow4(seg.slots.size());
  }

  // Each shard lies inside one segment (append_pow4 never crosses a
  // segment boundary); candidate violations are stashed per shard.
  std::vector<std::optional<Violation>> candidates(plan.shard_count());
  const auto visitor = [&](std::uint64_t ordinal, std::size_t shard,
                           Rng&) -> sweep::Visit {
    const auto seg_it = std::prev(std::upper_bound(
        segments.begin(), segments.end(), ordinal,
        [](std::uint64_t o, const Segment& s) { return o < s.base; }));
    const Segment& seg = *seg_it;
    const std::uint64_t counter = ordinal - seg.base;
    TableAdversary adversary(
        seg.slots, decode(counter, seg.slots.size(), seg.spec.sender_value));
    const ConditionReport report =
        protocol.run_and_check(seg.spec, &adversary);
    if (report.satisfied) return {};
    candidates[shard] = Violation{
        seg.spec, "behavior#" + std::to_string(counter), report};
    return {.hit = true};
  };

  const sweep::SweepResult result = sweep::run_sweep(plan, options, visitor);
  if (stats != nullptr) *stats = result.stats;
  if (!result.first_hit_shard.has_value()) return std::nullopt;
  return candidates[*result.first_hit_shard];
}

std::optional<Violation> exhaustive_behavior_search(const Config& config,
                                                    int max_f) {
  return exhaustive_behavior_search(config, max_f, sweep::SweepOptions{});
}

std::uint64_t behavior_search_space(const Config& config, int max_f) {
  DA_EXPECTS(config.valid());
  const int limit = max_f < 0 ? config.u : max_f;
  std::uint64_t total = 0;
  for (int f = 1; f <= limit; ++f) {
    for_each_subset(config.n, f, [&](const std::vector<NodeId>& faulty) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.faulty = faulty;
      total += pow_symbols(controlled_slots(spec).size());
    });
  }
  return total;
}

}  // namespace da::faults
