#include "faults/canon.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "util/contracts.hpp"

namespace da::faults {

namespace {

/// Certificate that every completion of the digit prefix ending at `pos`
/// is non-canonical: the digit at `pos` (column j+1, some row) is smaller
/// than `needed` (the same row's column-j digit) while the two columns
/// agree on every earlier row.
struct Violation {
  std::size_t pos = SlotSymmetry::npos;
  std::uint64_t needed = 0;
};

/// Earliest (most-significant) certificate position, or npos when the
/// counter is canonical. Scans rows top-down and adjacent column pairs
/// left-to-right; a pair drops out of contention the first time its
/// columns differ in the right direction.
Violation first_violation(const SlotSymmetry& sym, std::uint64_t counter) {
  Violation out;
  if (sym.trivial()) return out;
  // undecided[j]: columns j and j+1 are equal on every row seen so far.
  std::array<char, SlotSymmetry::kMaxSlots> undecided{};
  for (std::size_t j = 0; j + 1 < sym.free_count; ++j) undecided[j] = 1;
  for (std::size_t i = 0; i < sym.rows; ++i) {
    for (std::size_t j = 0; j + 1 < sym.free_count; ++j) {
      if (undecided[j] == 0) continue;
      const std::uint64_t a =
          behavior_digit(counter, sym.slots, sym.at(i, j));
      const std::uint64_t b =
          behavior_digit(counter, sym.slots, sym.at(i, j + 1));
      if (a == b) continue;
      if (a < b) {
        undecided[j] = 0;
        continue;
      }
      // Positions ascend with both i and j, so the first hit in scan
      // order is the earliest certificate.
      out.pos = sym.at(i, j + 1);
      out.needed = a;
      return out;
    }
  }
  return out;
}

/// Packs column `rank` into one integer, row 0 most significant — integer
/// order on packed columns is exactly lexicographic top-down order.
std::uint32_t pack_column(const SlotSymmetry& sym, std::uint64_t counter,
                          std::size_t rank) {
  std::uint32_t key = 0;
  for (std::size_t i = 0; i < sym.rows; ++i) {
    key = (key << 2) |
          static_cast<std::uint32_t>(
              behavior_digit(counter, sym.slots, sym.at(i, rank)));
  }
  return key;
}

std::uint64_t write_column(const SlotSymmetry& sym, std::uint64_t counter,
                           std::size_t rank, std::uint32_t key) {
  for (std::size_t i = sym.rows; i-- > 0;) {
    const std::size_t slot = sym.at(i, rank);
    const std::size_t shift = 2 * (sym.slots - 1 - slot);
    counter = (counter & ~(std::uint64_t{3} << shift)) |
              (std::uint64_t{key & 3} << shift);
    key >>= 2;
  }
  return counter;
}

}  // namespace

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  DA_EXPECTS(a <= std::numeric_limits<std::uint64_t>::max() / b);
  return a * b;
}

std::uint64_t checked_factorial(std::uint64_t k) {
  std::uint64_t out = 1;
  for (std::uint64_t i = 2; i <= k; ++i) out = checked_mul(out, i);
  return out;
}

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // r * (n-k+i) / i is exact: r * (n-k+i) = C(n-k+i, i) * i!/(i-1)! * ...
    // — the running value is always i * C(n-k+i, i) before the division.
    r = checked_mul(r, n - k + i) / i;
  }
  return r;
}

std::uint64_t multichoose(std::uint64_t n, std::uint64_t k) {
  if (k == 0) return 1;
  DA_EXPECTS(n >= 1);
  DA_EXPECTS(n - 1 <= std::numeric_limits<std::uint64_t>::max() - k);
  return binomial(n + k - 1, k);
}

SlotSymmetry make_slot_symmetry(
    const ScenarioSpec& spec,
    const std::vector<std::pair<NodeId, NodeId>>& slots) {
  DA_EXPECTS(slots.size() <= SlotSymmetry::kMaxSlots);
  SlotSymmetry sym;
  sym.slots = slots.size();
  const std::vector<NodeId> free = spec.fault_free_receivers();
  sym.free_count = free.size();

  // Rows appear as runs of equal `from`; the search emits them grouped.
  std::vector<NodeId> row_from;
  for (const auto& [from, to] : slots) {
    if (row_from.empty() || row_from.back() != from) row_from.push_back(from);
  }
  sym.rows = row_from.size();
  sym.pos.assign(sym.rows * std::max<std::size_t>(sym.free_count, 1),
                 SlotSymmetry::npos);
  if (sym.free_count == 0) return sym;

  std::size_t row = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0 && slots[i].first != slots[i - 1].first) ++row;
    const auto it = std::lower_bound(free.begin(), free.end(), slots[i].second);
    if (it == free.end() || *it != slots[i].second) continue;  // faulty dest
    const auto rank = static_cast<std::size_t>(it - free.begin());
    sym.pos[row * sym.free_count + rank] = i;
  }
  // Every faulty node addresses every free receiver exactly once.
  for (const std::size_t p : sym.pos) DA_ENSURES(p != SlotSymmetry::npos);
  return sym;
}

bool is_canonical(const SlotSymmetry& sym, std::uint64_t counter) {
  return first_violation(sym, counter).pos == SlotSymmetry::npos;
}

std::uint64_t canonical_form(const SlotSymmetry& sym, std::uint64_t counter) {
  if (sym.trivial()) return counter;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(
                                             sym.free_count));
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    counter = write_column(sym, counter, j, keys[j]);
  }
  return counter;
}

std::uint64_t orbit_size(const SlotSymmetry& sym, std::uint64_t counter) {
  if (sym.trivial()) return 1;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(
                                             sym.free_count));
  std::uint64_t orbit = checked_factorial(sym.free_count);
  std::size_t run = 1;
  for (std::size_t j = 1; j <= sym.free_count; ++j) {
    if (j < sym.free_count && keys[j] == keys[j - 1]) {
      ++run;
    } else {
      orbit /= checked_factorial(run);
      run = 1;
    }
  }
  return orbit;
}

std::uint64_t next_canonical(const SlotSymmetry& sym, std::uint64_t counter) {
  for (;;) {
    const Violation v = first_violation(sym, counter);
    if (v.pos == SlotSymmetry::npos) return counter;
    // Raise the offending digit to its left neighbour's value and zero
    // the tail: everything in between shares the certificate. The new
    // value is strictly larger (the digit rises by at least one step,
    // which outweighs any zeroed tail), so the loop terminates.
    const std::size_t shift = 2 * (sym.slots - 1 - v.pos);
    const std::uint64_t prefix =
        counter & ~((std::uint64_t{1} << (shift + 2)) - 1);
    counter = prefix | (v.needed << shift);
  }
}

std::uint64_t canonical_count(const SlotSymmetry& sym) {
  const std::size_t fixed = sym.slots - sym.rows * sym.free_count;
  std::uint64_t out = 1;
  for (std::size_t i = 0; i < fixed; ++i) out = checked_mul(out, 4);
  if (sym.rows == 0 || sym.free_count == 0) return out;
  // Each orbit picks a sorted multiset of r columns out of the 4^rows
  // possible per-receiver column vectors.
  std::uint64_t columns = 1;
  for (std::size_t i = 0; i < sym.rows; ++i) columns = checked_mul(columns, 4);
  return checked_mul(out, multichoose(columns, sym.free_count));
}

std::vector<NodeId> canonical_subset(int n, NodeId sender,
                                     const std::vector<NodeId>& faulty) {
  DA_EXPECTS(static_cast<int>(faulty.size()) <= n);
  const bool has_sender =
      std::find(faulty.begin(), faulty.end(), sender) != faulty.end();
  std::vector<NodeId> out;
  out.reserve(faulty.size());
  if (has_sender) out.push_back(sender);
  for (NodeId id = 0; id < n && out.size() < faulty.size(); ++id) {
    if (id == sender) continue;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool is_subset_representative(int n, NodeId sender,
                              const std::vector<NodeId>& faulty) {
  return faulty == canonical_subset(n, sender, faulty);
}

std::uint64_t subset_class_size(int n, NodeId sender,
                                const std::vector<NodeId>& faulty) {
  DA_EXPECTS(n >= 1 && static_cast<int>(faulty.size()) <= n);
  const bool has_sender =
      std::find(faulty.begin(), faulty.end(), sender) != faulty.end();
  const auto non_senders = static_cast<std::uint64_t>(n - 1);
  const auto f = static_cast<std::uint64_t>(faulty.size());
  return has_sender ? binomial(non_senders, f - 1) : binomial(non_senders, f);
}

std::uint64_t permute_free_receivers(const SlotSymmetry& sym,
                                     std::uint64_t counter,
                                     const std::vector<std::size_t>& perm) {
  DA_EXPECTS(perm.size() == sym.free_count);
  if (sym.trivial()) return counter;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::uint64_t out = counter;
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    out = write_column(sym, out, perm[j], keys[j]);
  }
  return out;
}

}  // namespace da::faults
