#include "faults/canon.hpp"

#include <algorithm>
#include <array>

#include "util/contracts.hpp"

namespace da::faults {

namespace {

/// Certificate that every completion of the digit prefix ending at `pos`
/// is non-canonical: the digit at `pos` (column j+1, some row) is smaller
/// than `needed` (the same row's column-j digit) while the two columns
/// agree on every earlier row.
struct Violation {
  std::size_t pos = SlotSymmetry::npos;
  std::uint64_t needed = 0;
};

/// Earliest (most-significant) certificate position, or npos when the
/// counter is canonical. Scans rows top-down and adjacent column pairs
/// left-to-right; a pair drops out of contention the first time its
/// columns differ in the right direction.
Violation first_violation(const SlotSymmetry& sym, std::uint64_t counter) {
  Violation out;
  if (sym.trivial()) return out;
  // undecided[j]: columns j and j+1 are equal on every row seen so far.
  std::array<char, SlotSymmetry::kMaxSlots> undecided{};
  for (std::size_t j = 0; j + 1 < sym.free_count; ++j) undecided[j] = 1;
  for (std::size_t i = 0; i < sym.rows; ++i) {
    for (std::size_t j = 0; j + 1 < sym.free_count; ++j) {
      if (undecided[j] == 0) continue;
      const std::uint64_t a =
          behavior_digit(counter, sym.slots, sym.at(i, j));
      const std::uint64_t b =
          behavior_digit(counter, sym.slots, sym.at(i, j + 1));
      if (a == b) continue;
      if (a < b) {
        undecided[j] = 0;
        continue;
      }
      // Positions ascend with both i and j, so the first hit in scan
      // order is the earliest certificate.
      out.pos = sym.at(i, j + 1);
      out.needed = a;
      return out;
    }
  }
  return out;
}

/// Packs column `rank` into one integer, row 0 most significant — integer
/// order on packed columns is exactly lexicographic top-down order.
std::uint32_t pack_column(const SlotSymmetry& sym, std::uint64_t counter,
                          std::size_t rank) {
  std::uint32_t key = 0;
  for (std::size_t i = 0; i < sym.rows; ++i) {
    key = (key << 2) |
          static_cast<std::uint32_t>(
              behavior_digit(counter, sym.slots, sym.at(i, rank)));
  }
  return key;
}

std::uint64_t write_column(const SlotSymmetry& sym, std::uint64_t counter,
                           std::size_t rank, std::uint32_t key) {
  for (std::size_t i = sym.rows; i-- > 0;) {
    const std::size_t slot = sym.at(i, rank);
    const std::size_t shift = 2 * (sym.slots - 1 - slot);
    counter = (counter & ~(std::uint64_t{3} << shift)) |
              (std::uint64_t{key & 3} << shift);
    key >>= 2;
  }
  return counter;
}

std::uint64_t factorial(std::uint64_t k) {
  std::uint64_t out = 1;
  for (std::uint64_t i = 2; i <= k; ++i) out *= i;
  return out;
}

}  // namespace

SlotSymmetry make_slot_symmetry(
    const ScenarioSpec& spec,
    const std::vector<std::pair<NodeId, NodeId>>& slots) {
  DA_EXPECTS(slots.size() <= SlotSymmetry::kMaxSlots);
  SlotSymmetry sym;
  sym.slots = slots.size();
  const std::vector<NodeId> free = spec.fault_free_receivers();
  sym.free_count = free.size();

  // Rows appear as runs of equal `from`; the search emits them grouped.
  std::vector<NodeId> row_from;
  for (const auto& [from, to] : slots) {
    if (row_from.empty() || row_from.back() != from) row_from.push_back(from);
  }
  sym.rows = row_from.size();
  sym.pos.assign(sym.rows * std::max<std::size_t>(sym.free_count, 1),
                 SlotSymmetry::npos);
  if (sym.free_count == 0) return sym;

  std::size_t row = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0 && slots[i].first != slots[i - 1].first) ++row;
    const auto it = std::lower_bound(free.begin(), free.end(), slots[i].second);
    if (it == free.end() || *it != slots[i].second) continue;  // faulty dest
    const auto rank = static_cast<std::size_t>(it - free.begin());
    sym.pos[row * sym.free_count + rank] = i;
  }
  // Every faulty node addresses every free receiver exactly once.
  for (const std::size_t p : sym.pos) DA_ENSURES(p != SlotSymmetry::npos);
  return sym;
}

bool is_canonical(const SlotSymmetry& sym, std::uint64_t counter) {
  return first_violation(sym, counter).pos == SlotSymmetry::npos;
}

std::uint64_t canonical_form(const SlotSymmetry& sym, std::uint64_t counter) {
  if (sym.trivial()) return counter;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(
                                             sym.free_count));
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    counter = write_column(sym, counter, j, keys[j]);
  }
  return counter;
}

std::uint64_t orbit_size(const SlotSymmetry& sym, std::uint64_t counter) {
  if (sym.trivial()) return 1;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(
                                             sym.free_count));
  std::uint64_t orbit = factorial(sym.free_count);
  std::size_t run = 1;
  for (std::size_t j = 1; j <= sym.free_count; ++j) {
    if (j < sym.free_count && keys[j] == keys[j - 1]) {
      ++run;
    } else {
      orbit /= factorial(run);
      run = 1;
    }
  }
  return orbit;
}

std::uint64_t next_canonical(const SlotSymmetry& sym, std::uint64_t counter) {
  for (;;) {
    const Violation v = first_violation(sym, counter);
    if (v.pos == SlotSymmetry::npos) return counter;
    // Raise the offending digit to its left neighbour's value and zero
    // the tail: everything in between shares the certificate. The new
    // value is strictly larger (the digit rises by at least one step,
    // which outweighs any zeroed tail), so the loop terminates.
    const std::size_t shift = 2 * (sym.slots - 1 - v.pos);
    const std::uint64_t prefix =
        counter & ~((std::uint64_t{1} << (shift + 2)) - 1);
    counter = prefix | (v.needed << shift);
  }
}

std::uint64_t canonical_count(const SlotSymmetry& sym) {
  const std::size_t fixed = sym.slots - sym.rows * sym.free_count;
  std::uint64_t out = 1;
  for (std::size_t i = 0; i < fixed; ++i) out *= 4;
  if (sym.rows == 0 || sym.free_count == 0) return out;
  // multichoose(4^rows, r) = C(4^rows + r - 1, r), built incrementally so
  // every intermediate is itself a binomial coefficient (exact division).
  std::uint64_t columns = 1;
  for (std::size_t i = 0; i < sym.rows; ++i) columns *= 4;
  std::uint64_t choose = 1;
  for (std::uint64_t k = 1; k <= sym.free_count; ++k) {
    choose = choose * (columns - 1 + k) / k;
  }
  return out * choose;
}

std::uint64_t permute_free_receivers(const SlotSymmetry& sym,
                                     std::uint64_t counter,
                                     const std::vector<std::size_t>& perm) {
  DA_EXPECTS(perm.size() == sym.free_count);
  if (sym.trivial()) return counter;
  std::array<std::uint32_t, SlotSymmetry::kMaxSlots> keys{};
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    keys[j] = pack_column(sym, counter, j);
  }
  std::uint64_t out = counter;
  for (std::size_t j = 0; j < sym.free_count; ++j) {
    out = write_column(sym, out, perm[j], keys[j]);
  }
  return out;
}

}  // namespace da::faults
